package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tendax/internal/util"
)

// TestSnapshotIsolationFuzz is the randomized concurrent snapshot-
// isolation test: N writer goroutines hammer one document with inserts,
// deletes and layout spans while M reader goroutines continuously take
// snapshots and assert each one is internally consistent — the visible
// text matches the frozen character chain, all lengths agree, and no span
// resolves to a torn range. Run it under -race; the short variant keeps CI
// inside its budget, `go test` without -short runs the long one.
func TestSnapshotIsolationFuzz(t *testing.T) {
	duration := 4 * time.Second
	writers, readers := 8, 4
	if testing.Short() {
		duration = 800 * time.Millisecond
		writers, readers = 4, 3
	}

	e := newEngine(t)
	d, err := e.CreateDocument("w0", "fuzz")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendText("w0", "seed text to fuzz over"); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+1)
	fail := func(format string, args ...interface{}) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
		stop.Store(true)
	}

	// Writers: concurrent position-based edits race each other, so a
	// stale position yielding ErrRange is expected and retried; any other
	// error is a real failure.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("w%d", w)
			rng := util.NewRand(uint64(100 + w))
			for !stop.Load() {
				n := d.Len()
				var err error
				switch op := rng.Intn(10); {
				case n == 0 || op < 5:
					_, err = d.InsertText(user, rng.Intn(n+1), rng.Letters(1+rng.Intn(4)))
				case op < 8:
					span := 1 + rng.Intn(3)
					pos := rng.Intn(n)
					if pos+span > n {
						span = n - pos
					}
					if span > 0 {
						_, err = d.DeleteRange(user, pos, span)
					}
				default:
					span := 1 + rng.Intn(5)
					pos := rng.Intn(n)
					if pos+span > n {
						span = n - pos
					}
					if span > 0 {
						_, err = d.ApplyLayout(user, pos, span, SpanBold, "true")
					}
				}
				if err != nil && !errors.Is(err, ErrRange) {
					fail("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: every snapshot must be internally consistent, no matter
	// how it interleaves with the writers.
	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := util.NewRand(uint64(900 + r))
			for !stop.Load() {
				s := d.Snapshot()
				tree := s.Tree()
				if err := tree.CheckInvariants(); err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				text := []rune(s.Text())
				if len(text) != s.Len() {
					fail("reader %d: text %d runes but Len %d", r, len(text), s.Len())
					return
				}
				if s.Len() > 0 {
					pos := rng.Intn(s.Len())
					span := 1 + rng.Intn(s.Len()-pos)
					meta, err := s.RangeMeta(pos, span)
					if err != nil {
						fail("reader %d: RangeMeta(%d,%d) of %d: %v", r, pos, span, s.Len(), err)
						return
					}
					for i, m := range meta {
						if m.Deleted {
							fail("reader %d: RangeMeta returned a tombstone", r)
							return
						}
						if m.Rune != text[pos+i] {
							fail("reader %d: RangeMeta rune %q vs text %q at %d", r, m.Rune, text[pos+i], pos+i)
							return
						}
					}
				}
				spans, err := s.Spans()
				if err != nil {
					fail("reader %d: Spans: %v", r, err)
					return
				}
				for _, sp := range spans {
					from, to := s.SpanRange(sp)
					if from < 0 || to < from || from > s.Len() {
						fail("reader %d: torn span range [%d,%d) of %d", r, from, to, s.Len())
						return
					}
					if to > s.Len() {
						fail("reader %d: span end %d beyond snapshot %d", r, to, s.Len())
						return
					}
				}
				if _, err := s.RenderMarkup(); err != nil {
					fail("reader %d: RenderMarkup: %v", r, err)
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}

	// Quiesced: the final snapshot is the final state, and buffer,
	// snapshot and database all agree.
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	if s.Text() != d.Text() {
		t.Fatal("final snapshot diverged from live text")
	}
	t.Logf("fuzz: %d consistent snapshot reads against %d writers", reads.Load(), writers)
}

// TestSnapshotSeqPairsTextWithEvents locks in the SnapshotSeq contract
// under concurrency: with single-character appends as the only event
// source, a snapshot paired with event sequence S must contain exactly S
// characters — the pair can never expose a sequence number without the
// text it announced (the torn read the seed's separate text/Seq lookups
// allowed, which made clients drop the in-between edit as a duplicate).
func TestSnapshotSeqPairsTextWithEvents(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("w", "pair")
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := d.AppendText("w", "x"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(600 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		snap, seq := d.SnapshotSeq()
		if seq < snap.Seq() {
			t.Errorf("returned seq %d below the pair's own %d", seq, snap.Seq())
			break
		}
		if uint64(snap.Len()) != snap.Seq() {
			t.Errorf("pair seq %d but text has %d chars", snap.Seq(), snap.Len())
			break
		}
		checks++
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if checks == 0 {
		t.Fatal("no paired reads performed")
	}
}

// TestSnapshotReadersDoNotBlockWriters verifies the headline property at
// the API level: a reader holding (and continuously using) old snapshots
// cannot stall a writer, because snapshot acquisition and traversal take
// no document lock.
func TestSnapshotReadersDoNotBlockWriters(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("w", "noblock")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendText("w", "some starting text"); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := d.Snapshot() // pin an old version for the whole run
			for !stop.Load() {
				_ = held.Text()
				_ = d.Snapshot().Text()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := d.AppendText("w", "x"); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if d.Len() != len("some starting text")+200 {
		t.Fatalf("writer lost edits: %d", d.Len())
	}
}
