package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tendax/internal/awareness"
	"tendax/internal/db"
	"tendax/internal/texttree"
	"tendax/internal/txn"
	"tendax/internal/util"
	"tendax/internal/wal"
)

// Document is an open handle on one TeNDaX document. All editing methods
// are transactional: the in-memory buffer is only updated after the
// database transaction commits, and the committed operation is published on
// the awareness bus. Methods are safe for concurrent use.
//
// Reads are MVCC: writers publish an immutable snapshot of the buffer at
// every commit, and all read-only methods resolve against the latest
// published snapshot instead of holding d.mu over the traversal. The
// document lock serialises writers only.
type Document struct {
	eng *Engine
	id  util.ID

	// snap is the latest committed (snapshot, event-seq) pair, atomically
	// replaced by writers under d.mu and read lock-free by everyone else.
	snap atomic.Pointer[published]

	// Cold-archive lazy-load state: opening a document reads only the hot
	// character set; the archive rows are decoded on the first read that
	// actually needs them (time travel past the horizon, undo of an
	// archived delete, a compaction pass). archState moves archNone →
	// archPending → archLoaded; arch0 and archLoadVersion are written once
	// under d.mu before the archLoaded store publishes them.
	archState       atomic.Int32
	arch0           *texttree.Archive // the archive as first loaded
	archLoadVersion uint64            // buffer version at load time

	mu         sync.Mutex
	buf        *texttree.Buffer
	ops        []opRecord // operation log cache (ops table is authoritative)
	name       string
	creator    string
	created    time.Time
	modified   time.Time
	lastAuthor string
	state      string
	authors    map[string]bool
}

func newDocument(e *Engine, id util.ID, name, creator string, created time.Time, state string) *Document {
	d := &Document{
		eng:     e,
		id:      id,
		buf:     texttree.NewBuffer(),
		name:    name,
		creator: creator,
		created: created,
		state:   state,
		authors: map[string]bool{},
	}
	if creator != "" {
		d.authors[creator] = true
	}
	//tendax:allow-snapshotread construction: the document is not yet shared
	d.snap.Store(&published{tree: d.buf.Snapshot(), seq: e.bus.Seq(id)})
	return d
}

// published pairs an immutable text snapshot with the awareness-bus
// sequence number of the event that announced it. Serving reads from the
// pair (rather than reading the text and the bus sequence separately, as
// the seed did) is what lets a resync response promise "this text contains
// exactly the edits up to this Seq" — without the pairing, an edit
// committing between the two reads is silently dropped by the client as a
// pre-snapshot duplicate.
type published struct {
	tree *texttree.Snapshot
	seq  uint64
}

// publishEventLocked is the writers' single publish point: called under
// d.mu after a committed transaction's effects are applied to the buffer,
// it announces the operation on the awareness bus and — atomically with
// the sequence-number assignment, under the bus lock — publishes the new
// snapshot paired with that sequence number. Readers switch from one
// committed state to the next in a single atomic load and can never
// observe an event seq without the state it describes.
func (d *Document) publishEventLocked(ev awareness.Event) uint64 {
	tree := d.buf.Snapshot()
	return d.eng.bus.PublishWith(ev, func(seq uint64) {
		d.snap.Store(&published{tree: tree, seq: seq})
	})
}

// load rebuilds the buffer from the chars table.
func (d *Document) load() error {
	rids, err := d.eng.tChars.LookupEq("doc", int64(d.id))
	if err != nil {
		return err
	}
	rows := make([]texttree.Char, 0, len(rids))
	for _, rid := range rids {
		row, err := d.eng.tChars.Get(nil, rid)
		if err != nil {
			return err
		}
		rows = append(rows, charFromRow(row))
	}
	buf, err := texttree.Load(rows)
	if err != nil {
		return fmt.Errorf("core: document %v: %w", d.id, err)
	}
	// The cold archive is NOT decoded here: document open tracks the hot
	// set alone. A cheap index probe records whether archive rows exist;
	// the first read that needs them (ensureArchive) pays the decode.
	archRids, err := d.eng.tArchive.LookupEq("doc", int64(d.id))
	if err != nil {
		return fmt.Errorf("core: document %v: %w", d.id, err)
	}
	if len(archRids) > 0 {
		d.archState.Store(archPending)
	}
	//tendax:allow-snapshotread load-time construction: the document is published only after load returns
	d.buf = buf
	d.snap.Store(&published{tree: buf.Snapshot(), seq: d.eng.bus.Seq(d.id)})
	for _, a := range buf.Authors() {
		d.authors[a] = true
	}
	return d.loadOps()
}

// ID returns the document's identifier.
func (d *Document) ID() util.ID { return d.id }

// Name returns the document's name.
func (d *Document) Name() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.name
}

// Len returns the number of visible characters, from the latest committed
// snapshot: no lock is taken.
func (d *Document) Len() int { return d.snap.Load().tree.Len() }

// Text returns the full visible text without access filtering (embedded,
// trusted callers), resolved against the latest committed snapshot — the
// traversal runs entirely off the document lock. Use TextFor to apply
// character-level security.
func (d *Document) Text() string { return d.snap.Load().tree.Text() }

// TextFor returns the text user is allowed to read: characters masked by
// range ACLs are elided (paper: fine-grained security). The filter runs
// against one committed snapshot, off the document lock.
func (d *Document) TextFor(user string) (string, error) {
	return d.Snapshot().TextFor(user)
}

// Info returns current document metadata.
func (d *Document) Info() DocInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	authors := make([]string, 0, len(d.authors))
	for a := range d.authors {
		authors = append(authors, a)
	}
	sort.Strings(authors)
	return DocInfo{
		ID: d.id, Name: d.name, Creator: d.creator, Created: d.created,
		Modified: d.modified, LastAuthor: d.lastAuthor, Size: d.buf.Len(),
		State: d.state, Authors: authors,
	}
}

// Buffer returns an independent mutable copy of the underlying buffer for
// callers that need bulk character-level access (the fine-grained readers
// in this package go through Snapshot/CharMetaAt/RangeMeta instead). It is
// materialised from the latest committed snapshot, so it is internally
// consistent, built without ever holding the document lock, and unaffected
// by concurrent editing after the call.
func (d *Document) Buffer() (*texttree.Buffer, error) {
	// Bulk character access includes the cold set; load the parked
	// archive first (with the error surfaced, unlike the best-effort
	// time-travel paths).
	if _, err := d.ensureArchive(); err != nil {
		return nil, fmt.Errorf("core: archive of document %v: %w", d.id, err)
	}
	tree := d.snap.Load().tree
	buf, err := texttree.Load(tree.AllChars())
	if err != nil {
		return nil, fmt.Errorf("core: snapshot of document %v: %w", d.id, err)
	}
	buf.SetArchive(d.timeTravelTree(tree).Archive())
	return buf, nil
}

// InsertText types text at visible position pos on behalf of user, as one
// transaction. It returns the operation ID.
func (d *Document) InsertText(user string, pos int, text string) (util.ID, error) {
	return d.insert(user, pos, text, "insert", util.NilID, nil)
}

// InsertTextAsync is InsertText without the durability wait: it returns as
// soon as the editing transaction has committed and the document lock is
// free, along with the commit LSN. The caller must confirm durability via
// Engine.WaitDurable(lsn) before acknowledging the edit to its user; until
// then a crash may roll the edit back.
func (d *Document) InsertTextAsync(user string, pos int, text string) (util.ID, wal.LSN, error) {
	return d.insertAsync(user, pos, text, "insert", util.NilID, nil)
}

// AppendText types text at the end of the document. Unlike InsertText with
// a caller-computed position, the end position is resolved under the
// document lock, so concurrent appenders never interleave inside each
// other's runs.
func (d *Document) AppendText(user string, text string) (util.ID, error) {
	return d.insert(user, -1, text, "insert", util.NilID, nil)
}

// AppendTextAsync is AppendText without the durability wait; see
// InsertTextAsync.
func (d *Document) AppendTextAsync(user string, text string) (util.ID, wal.LSN, error) {
	return d.insertAsync(user, -1, text, "insert", util.NilID, nil)
}

// Clipboard is the result of a Copy: the text plus the identities of the
// copied character instances, which Paste records as provenance.
type Clipboard struct {
	Text     string
	SrcDoc   util.ID
	SrcChars []util.ID
}

// Copy captures [pos, pos+n) into a clipboard and logs the copy action
// (TeNDaX gathers metadata on all copy and paste operations).
func (d *Document) Copy(user string, pos, n int) (Clipboard, error) {
	if err := d.eng.allowed(user, d.id, RRead); err != nil {
		return Clipboard{}, err
	}
	clip, lsn, err := d.copyAsync(user, pos, n)
	if err != nil {
		return Clipboard{}, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return Clipboard{}, err
	}
	return clip, nil
}

// copyAsync does Copy's locked work with an asynchronous commit; the
// durability wait is the caller's, outside d.mu (group-commit rule).
func (d *Document) copyAsync(user string, pos, n int) (Clipboard, wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := d.buf.RangeIDs(pos, n)
	if len(ids) != n {
		return Clipboard{}, 0, fmt.Errorf("%w: copy [%d,%d) of %d chars", ErrRange, pos, pos+n, d.buf.Len())
	}
	clip := Clipboard{Text: d.buf.Slice(pos, n), SrcDoc: d.id, SrcChars: ids}
	opID := d.eng.ids.Next()
	now := d.eng.clock.Now()
	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		return d.writeOpRow(tx, &opRecord{ID: opID, User: user, Kind: "copy",
			CharIDs: ids, Created: now})
	})
	if err != nil {
		return Clipboard{}, 0, err
	}
	d.ops = append(d.ops, opRecord{ID: opID, User: user, Kind: "copy", CharIDs: ids, Created: now})
	return clip, lsn, nil
}

// Paste inserts clipboard content at pos, recording per-character
// provenance links back to the source characters (the data-lineage raw
// material, Figure 1).
func (d *Document) Paste(user string, pos int, clip Clipboard) (util.ID, error) {
	return d.insert(user, pos, clip.Text, "paste", clip.SrcDoc, clip.SrcChars)
}

// insert is insertAsync plus the durability wait — the transactional
// contract of the original API: when it returns, the edit is on stable
// storage.
func (d *Document) insert(user string, pos int, text, kind string, srcDoc util.ID, srcChars []util.ID) (util.ID, error) {
	opID, lsn, err := d.insertAsync(user, pos, text, kind, srcDoc, srcChars)
	if err != nil {
		return util.NilID, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return util.NilID, err
	}
	return opID, nil
}

// insertAsync implements InsertText/Paste/notes: one transaction that
// batch-inserts the new character rows, rewrites the two neighbour links,
// logs the operation and refreshes document metadata. The commit is
// asynchronous and the durability wait is left to the caller, crucially
// outside d.mu: concurrent editors of the same document serialize only on
// the in-memory apply and then share one group-commit fsync, instead of
// queueing behind each other's disk writes.
func (d *Document) insertAsync(user string, pos int, text, kind string, srcDoc util.ID, srcChars []util.ID) (util.ID, wal.LSN, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return util.NilID, 0, err
	}
	runes := []rune(text)
	if len(runes) == 0 {
		return util.NilID, 0, fmt.Errorf("core: empty %s", kind)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	if pos < 0 { // append: resolve under the lock
		pos = d.buf.Len()
	}
	prevID, err := d.buf.PredecessorForInsert(pos)
	if err != nil {
		return util.NilID, 0, fmt.Errorf("%w: insert at %d of %d", ErrRange, pos, d.buf.Len())
	}
	succID := d.buf.ChainSuccessor(prevID)
	now := d.eng.clock.Now()
	opID := d.eng.ids.Next()

	chars := make([]texttree.Char, len(runes))
	ids := make([]util.ID, len(runes))
	for i := range runes {
		ids[i] = d.eng.ids.Next()
	}
	for i, r := range runes {
		ch := texttree.Char{
			ID: ids[i], Rune: r, Author: user, Created: now,
			SourceDoc: srcDoc,
		}
		if srcChars != nil && i < len(srcChars) {
			ch.SourceChar = srcChars[i]
		}
		if i == 0 {
			ch.Prev = prevID
		} else {
			ch.Prev = ids[i-1]
		}
		if i == len(runes)-1 {
			ch.Next = succID
		} else {
			ch.Next = ids[i+1]
		}
		chars[i] = ch
	}

	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		rows := make([]db.Row, len(chars))
		for i := range chars {
			rows[i] = d.rowFromChar(&chars[i])
		}
		if _, err := d.eng.tChars.InsertBatch(tx, rows); err != nil {
			return err
		}
		if !prevID.IsNil() {
			pc, _ := d.buf.Char(prevID)
			upd := *pc
			upd.Next = ids[0]
			if err := d.eng.tChars.UpdateByPK(tx, int64(prevID), d.rowFromChar(&upd)); err != nil {
				return err
			}
		}
		if !succID.IsNil() {
			sc, _ := d.buf.Char(succID)
			upd := *sc
			upd.Prev = ids[len(ids)-1]
			if err := d.eng.tChars.UpdateByPK(tx, int64(succID), d.rowFromChar(&upd)); err != nil {
				return err
			}
		}
		if err := d.writeOpRow(tx, &opRecord{ID: opID, User: user, Kind: kind,
			CharIDs: ids, Created: now}); err != nil {
			return err
		}
		return d.updateDocRowLocked(tx, user, now, d.buf.Len()+len(runes))
	})
	if err != nil {
		return util.NilID, 0, err
	}

	// Transaction committed: apply to the in-memory buffer with one batched
	// splice, publish the new snapshot for readers, and notify.
	if _, err := d.buf.InsertRun(prevID, chars); err != nil {
		return util.NilID, 0, fmt.Errorf("core: buffer diverged: %w", err)
	}
	d.ops = append(d.ops, opRecord{ID: opID, User: user, Kind: kind, CharIDs: ids, Created: now})
	d.noteAuthorLocked(user, now)
	evKind := awareness.EvInsert
	if kind == "paste" {
		evKind = awareness.EvPaste
	}
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: evKind, User: user, OpID: opID,
		Pos: pos, Text: text, N: len(runes), IDs: ids, At: now,
	})
	return opID, lsn, nil
}

// DeleteRange deletes n visible characters starting at pos, as one
// transaction. Characters become tombstones (logical deletion), preserving
// history, versions and provenance.
func (d *Document) DeleteRange(user string, pos, n int) (util.ID, error) {
	opID, lsn, err := d.DeleteRangeAsync(user, pos, n)
	if err != nil {
		return util.NilID, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return util.NilID, err
	}
	return opID, nil
}

// DeleteRangeAsync is DeleteRange without the durability wait; see
// InsertTextAsync for the contract.
func (d *Document) DeleteRangeAsync(user string, pos, n int) (util.ID, wal.LSN, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return util.NilID, 0, err
	}
	if n <= 0 {
		return util.NilID, 0, fmt.Errorf("core: delete of %d chars", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := d.buf.RangeIDs(pos, n)
	if len(ids) != n {
		return util.NilID, 0, fmt.Errorf("%w: delete [%d,%d) of %d chars", ErrRange, pos, pos+n, d.buf.Len())
	}
	now := d.eng.clock.Now()
	opID := d.eng.ids.Next()

	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		for _, id := range ids {
			ch, _ := d.buf.Char(id)
			upd := *ch
			upd.Deleted = true
			upd.DeletedBy = user
			upd.DeletedAt = now
			upd.Restored = time.Time{} // a re-delete opens a fresh interval
			if err := d.eng.tChars.UpdateByPK(tx, int64(id), d.rowFromChar(&upd)); err != nil {
				return err
			}
		}
		if err := d.writeOpRow(tx, &opRecord{ID: opID, User: user, Kind: "delete",
			CharIDs: ids, Created: now}); err != nil {
			return err
		}
		return d.updateDocRowLocked(tx, user, now, d.buf.Len()-n)
	})
	if err != nil {
		return util.NilID, 0, err
	}
	for _, id := range ids {
		d.buf.Delete(id, user, now)
	}
	d.ops = append(d.ops, opRecord{ID: opID, User: user, Kind: "delete", CharIDs: ids, Created: now})
	d.noteAuthorLocked(user, now)
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvDelete, User: user, OpID: opID,
		Pos: pos, N: n, At: now,
	})
	return opID, lsn, nil
}

// RecordRead logs that user read the document now (metadata for dynamic
// folders such as "documents I read this week") and returns the text.
func (d *Document) RecordRead(user string) (string, error) {
	text, err := d.TextFor(user)
	if err != nil {
		return "", err
	}
	now := d.eng.clock.Now()
	id := d.eng.ids.Next()
	err = d.eng.withTxn(func(tx *txn.Txn) error {
		_, err := d.eng.tReads.Insert(tx, db.Row{int64(id), int64(d.id), user, now})
		return err
	})
	if err != nil {
		return "", err
	}
	return text, nil
}

// SetState transitions the document state (draft, review, final, …);
// workflow uses this for document routing.
func (d *Document) SetState(user, state string) error {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return err
	}
	lsn, err := d.setStateAsync(user, state)
	if err != nil {
		return err
	}
	return d.eng.WaitDurable(lsn)
}

// setStateAsync does SetState's locked work with an asynchronous commit;
// the durability wait is the caller's, outside d.mu (group-commit rule).
func (d *Document) setStateAsync(user, state string) (wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.eng.clock.Now()
	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		row, _, err := d.eng.tDocs.GetByPK(tx, int64(d.id))
		if err != nil {
			return err
		}
		row[7] = state
		row[4] = now
		return d.eng.tDocs.UpdateByPK(tx, int64(d.id), row)
	})
	if err != nil {
		return 0, err
	}
	d.state = state
	d.modified = now
	// Workflow transitions change ranking-relevant metadata (Modified,
	// State) without touching the text, so they must still reach the
	// awareness stream: the incremental indexer refreshes metadata from
	// exactly these events.
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvWorkflow, User: user, Name: state, At: now,
	})
	return lsn, nil
}

// SetProperty stores a user-defined document property (paper §2:
// "user defined properties").
func (d *Document) SetProperty(user, key, value string) error {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return err
	}
	id := d.eng.ids.Next()
	return d.eng.withTxn(func(tx *txn.Txn) error {
		// Replace an existing property with the same key.
		rids, err := d.eng.tProps.LookupEq("doc", int64(d.id))
		if err != nil {
			return err
		}
		for _, rid := range rids {
			row, err := d.eng.tProps.Get(tx, rid)
			if err != nil {
				continue
			}
			if row[2].(string) == key {
				row[3] = value
				return d.eng.tProps.Update(tx, rid, row)
			}
		}
		_, err = d.eng.tProps.Insert(tx, db.Row{int64(id), int64(d.id), key, value})
		return err
	})
}

// Properties returns the document's user-defined properties.
func (d *Document) Properties() (map[string]string, error) {
	rids, err := d.eng.tProps.LookupEq("doc", int64(d.id))
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(rids))
	for _, rid := range rids {
		row, err := d.eng.tProps.Get(nil, rid)
		if err != nil {
			continue
		}
		out[row[2].(string)] = row[3].(string)
	}
	return out, nil
}

// CharMeta is the character-level metadata TeNDaX gathers automatically.
type CharMeta struct {
	ID         util.ID
	Rune       rune
	Author     string
	Created    time.Time
	Deleted    bool
	DeletedBy  string
	DeletedAt  time.Time
	Restored   time.Time
	SourceDoc  util.ID
	SourceChar util.ID
}

// CharMetaAt returns the metadata of the visible character at pos, from
// the latest committed snapshot.
func (d *Document) CharMetaAt(pos int) (CharMeta, error) {
	return d.Snapshot().CharMetaAt(pos)
}

// RangeMeta returns metadata for the visible range [pos, pos+n), resolved
// against one committed snapshot: the range can never mix two states.
func (d *Document) RangeMeta(pos, n int) ([]CharMeta, error) {
	return d.Snapshot().RangeMeta(pos, n)
}

func charMetaOf(ch *texttree.Char) CharMeta {
	return CharMeta{
		ID: ch.ID, Rune: ch.Rune, Author: ch.Author, Created: ch.Created,
		Deleted: ch.Deleted, DeletedBy: ch.DeletedBy, DeletedAt: ch.DeletedAt,
		Restored: ch.Restored, SourceDoc: ch.SourceDoc, SourceChar: ch.SourceChar,
	}
}

// rowFromChar converts a character instance into its chars-table row.
func (d *Document) rowFromChar(ch *texttree.Char) db.Row {
	return db.Row{
		int64(ch.ID), int64(d.id), int64(ch.Rune), ch.Author, ch.Created,
		int64(ch.Prev), int64(ch.Next), ch.Deleted, ch.DeletedBy,
		nonZeroTime(ch.DeletedAt), int64(ch.SourceDoc), int64(ch.SourceChar),
		nonZeroTime(ch.Restored),
	}
}

func charFromRow(row db.Row) texttree.Char {
	return texttree.Char{
		ID:         util.ID(row[0].(int64)),
		Rune:       rune(row[2].(int64)),
		Author:     row[3].(string),
		Created:    row[4].(time.Time),
		Prev:       util.ID(row[5].(int64)),
		Next:       util.ID(row[6].(int64)),
		Deleted:    row[7].(bool),
		DeletedBy:  row[8].(string),
		DeletedAt:  zeroableTime(row[9].(time.Time)),
		SourceDoc:  util.ID(row[10].(int64)),
		SourceChar: util.ID(row[11].(int64)),
		Restored:   zeroableTime(row[12].(time.Time)),
	}
}

// The row codec stores time as UnixNano; represent "no time" as Unix(0,0).
func nonZeroTime(t time.Time) time.Time {
	if t.IsZero() {
		return time.Unix(0, 0).UTC()
	}
	return t
}

func zeroableTime(t time.Time) time.Time {
	if t.Equal(time.Unix(0, 0).UTC()) {
		return time.Time{}
	}
	return t
}

// updateDocRowLocked refreshes the docs-table row inside tx. Caller holds
// d.mu; newSize is the post-operation visible length.
func (d *Document) updateDocRowLocked(tx *txn.Txn, user string, now time.Time, newSize int) error {
	row, _, err := d.eng.tDocs.GetByPK(tx, int64(d.id))
	if err != nil {
		return err
	}
	row[4] = now
	row[5] = user
	row[6] = int64(newSize)
	if !d.authors[user] {
		cur := row[8].(string)
		if cur == "" {
			row[8] = user
		} else {
			row[8] = cur + "," + user
		}
	}
	return d.eng.tDocs.UpdateByPK(tx, int64(d.id), row)
}

func (d *Document) noteAuthorLocked(user string, now time.Time) {
	d.authors[user] = true
	d.lastAuthor = user
	d.modified = now
}

// CheckInvariants verifies buffer invariants plus buffer/database
// consistency of the visible text (tests and failure injection).
func (d *Document) CheckInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Verify the real merged state, not just the hot subset.
	if _, err := d.ensureArchiveLocked(); err != nil {
		return err
	}
	if err := d.buf.CheckInvariants(); err != nil {
		return err
	}
	// The published snapshot must be exactly the committed buffer state.
	if snap := d.snap.Load().tree; snap.Version() != d.buf.Version() || snap.Text() != d.buf.Text() {
		return fmt.Errorf("core: published snapshot (v%d) lags buffer (v%d)",
			snap.Version(), d.buf.Version())
	}
	// Reload from the database and compare.
	rids, err := d.eng.tChars.LookupEq("doc", int64(d.id))
	if err != nil {
		return err
	}
	rows := make([]texttree.Char, 0, len(rids))
	for _, rid := range rids {
		row, err := d.eng.tChars.Get(nil, rid)
		if err != nil {
			return err
		}
		rows = append(rows, charFromRow(row))
	}
	fresh, err := texttree.Load(rows)
	if err != nil {
		return fmt.Errorf("core: reload: %w", err)
	}
	if fresh.Text() != d.buf.Text() {
		return fmt.Errorf("core: buffer/database divergence:\n mem %q\n db  %q",
			firstN(d.buf.Text(), 60), firstN(fresh.Text(), 60))
	}
	return nil
}

func firstN(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
