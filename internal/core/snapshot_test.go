package core

import (
	"strings"
	"testing"

	"tendax/internal/util"
)

func TestDocumentSnapshotIsolation(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertText("alice", 0, "hello world"); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	if s.Text() != "hello world" || s.Len() != 11 {
		t.Fatalf("snapshot %q/%d", s.Text(), s.Len())
	}
	v := s.Version()

	// Writes after the snapshot must be invisible to it.
	if _, err := d.DeleteRange("alice", 0, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertText("bob", 0, "goodbye "); err != nil {
		t.Fatal(err)
	}
	if s.Text() != "hello world" || s.Version() != v {
		t.Fatalf("snapshot observed later writes: %q v%d", s.Text(), s.Version())
	}
	if err := s.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "goodbye world" {
		t.Fatalf("live text %q", d.Text())
	}
	s2 := d.Snapshot()
	if s2.Version() <= v {
		t.Fatalf("version did not advance: %d <= %d", s2.Version(), v)
	}
	meta, err := s2.RangeMeta(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if meta[0].Author != "bob" {
		t.Fatalf("meta author %q", meta[0].Author)
	}
}

func TestDocumentSnapshotVersionMonotonic(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "vmono")
	if err != nil {
		t.Fatal(err)
	}
	last := d.Snapshot().Version()
	for i := 0; i < 5; i++ {
		if _, err := d.AppendText("alice", "x"); err != nil {
			t.Fatal(err)
		}
		v := d.Snapshot().Version()
		if v <= last {
			t.Fatalf("version not monotonic: %d after %d", v, last)
		}
		last = v
	}
	if _, err := d.UndoGlobal("alice"); err != nil {
		t.Fatal(err)
	}
	if v := d.Snapshot().Version(); v <= last {
		t.Fatalf("undo did not publish a new snapshot: %d after %d", v, last)
	}
}

// TestRenderMarkupNotTornByLaterWrites is the regression test for the
// audited RenderMarkup/Outline paths: the seed implementation re-acquired
// the document lock for the span list, the text and every span range, so a
// writer landing between those reads produced a rendering that mixed
// document states. A DocSnapshot must keep rendering its own state no
// matter what commits afterwards.
func TestRenderMarkupNotTornByLaterWrites(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "render")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertText("alice", 0, "title and body text"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetHeading("alice", 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyLayout("alice", 10, 9, SpanBold, "true"); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	want, err := s.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want, "<heading=1>title</heading>") || !strings.Contains(want, "<bold>body text</bold>") {
		t.Fatalf("markup = %q", want)
	}

	// Delete the bolded tail and half the heading; the old snapshot must
	// render byte-identically to before, while the live render shrinks.
	if _, err := d.DeleteRange("bob", 8, 11); err != nil {
		t.Fatal(err)
	}
	got, err := s.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("snapshot render torn by later write:\n before %q\n after  %q", want, got)
	}
	live, err := d.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	if live == want {
		t.Fatal("live render did not change after delete")
	}
	// The bold span's characters are all tombstoned: it must collapse, not
	// emit markers over text from another state.
	if strings.Contains(live, "<bold>") {
		t.Fatalf("live render kept a span over deleted text: %q", live)
	}

	// A span laid over text the snapshot has never seen must not produce a
	// phantom marker in the snapshot's render.
	if _, err := d.AppendText("bob", " new tail"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyLayout("bob", d.Len()-4, 4, SpanItalic, "true"); err != nil {
		t.Fatal(err)
	}
	got, err = s.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("snapshot render saw a later span:\n before %q\n after  %q", want, got)
	}
}

func TestOutlineResolvesAgainstOneSnapshot(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "outline")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertText("alice", 0, "intro\nchapter one\nbody"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetHeading("alice", 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetHeading("alice", 6, 11, 2); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	want, err := s.Outline()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 || want[0].Text != "intro" || want[1].Text != "chapter one" {
		t.Fatalf("outline = %+v", want)
	}
	// Delete everything; the snapshot's outline must not move.
	if _, err := d.DeleteRange("bob", 0, d.Len()); err != nil {
		t.Fatal(err)
	}
	got, err := s.Outline()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Text != want[0].Text || got[1].Text != want[1].Text {
		t.Fatalf("snapshot outline torn: %+v", got)
	}
	live, err := d.Outline()
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("live outline over empty text: %+v", live)
	}
}

// TestDiffVersionsNotTornByLaterWrites: the seed DiffVersions read the
// version text and the current text under two separate lock acquisitions.
// Against a snapshot, the "current" side is pinned: a commit landing
// between the two reconstructions cannot leak into the diff.
func TestDiffVersionsNotTornByLaterWrites(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "diff")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendText("alice", "line one\nline two"); err != nil {
		t.Fatal(err)
	}
	v, err := d.CreateVersion("alice", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendText("alice", "\nline three"); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	want, err := s.DiffVersions(v.ID, util.NilID)
	if err != nil {
		t.Fatal(err)
	}
	// Later write: must not change the snapshot's diff.
	if _, err := d.AppendText("bob", "\nline four"); err != nil {
		t.Fatal(err)
	}
	got, err := s.DiffVersions(v.ID, util.NilID)
	if err != nil {
		t.Fatal(err)
	}
	if FormatDiff(got) != FormatDiff(want) {
		t.Fatalf("snapshot diff torn:\n%s\nvs\n%s", FormatDiff(got), FormatDiff(want))
	}
	adds := 0
	for _, h := range got {
		if h.Kind == DiffAdd {
			for _, l := range h.Lines {
				if l == "line three" {
					adds++
				}
				if l == "line four" {
					t.Fatal("diff leaked a write that landed after the snapshot")
				}
			}
		}
	}
	if adds != 1 {
		t.Fatalf("diff missing the snapshot-visible addition:\n%s", FormatDiff(got))
	}
}

// TestVersionTextAgreesWithSnapshotAtOp is the document-level half of the
// time-travel property: the text reconstructed for a version must equal
// the snapshot captured when the version was created.
func TestVersionTextAgreesWithSnapshotAtOp(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "tt")
	if err != nil {
		t.Fatal(err)
	}
	rng := util.NewRand(7)
	type point struct {
		version util.ID
		text    string
	}
	var points []point
	for i := 0; i < 40; i++ {
		if d.Len() == 0 || rng.Intn(3) != 0 {
			pos := rng.Intn(d.Len() + 1)
			if _, err := d.InsertText("alice", pos, rng.Letters(3)); err != nil {
				t.Fatal(err)
			}
		} else {
			pos := rng.Intn(d.Len())
			if _, err := d.DeleteRange("alice", pos, 1); err != nil {
				t.Fatal(err)
			}
		}
		v, err := d.CreateVersion("alice", "auto")
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, point{version: v.ID, text: d.Snapshot().Text()})
	}
	for i, p := range points {
		got, err := d.VersionText(p.version)
		if err != nil {
			t.Fatal(err)
		}
		if got != p.text {
			t.Fatalf("op %d: VersionText = %q, snapshot captured %q", i, got, p.text)
		}
	}
}

// TestRangeMetaErrorsOnOutOfRange locks in the audited error contract: a
// read that cannot be satisfied from one consistent view returns ErrRange,
// never a partial result.
func TestRangeMetaErrorsOnOutOfRange(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "rm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendText("alice", "abc"); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ pos, n int }{{0, 4}, {3, 1}, {-1, 2}, {1, -1}} {
		if _, err := d.RangeMeta(c.pos, c.n); err == nil {
			t.Fatalf("RangeMeta(%d,%d) succeeded on 3 chars", c.pos, c.n)
		}
	}
	if _, err := d.CharMetaAt(3); err == nil {
		t.Fatal("CharMetaAt past end succeeded")
	}
	meta, err := d.RangeMeta(1, 2)
	if err != nil || len(meta) != 2 || meta[0].Rune != 'b' {
		t.Fatalf("RangeMeta(1,2) = %+v, %v", meta, err)
	}
}

// TestBufferCopyIsOffLockAndStable: Document.Buffer materialises from the
// snapshot — it must be a deep copy unaffected by later edits.
func TestBufferCopyIsOffLockAndStable(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "bufcopy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendText("alice", "frozen"); err != nil {
		t.Fatal(err)
	}
	buf, err := d.Buffer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendText("bob", " moved"); err != nil {
		t.Fatal(err)
	}
	if buf.Text() != "frozen" {
		t.Fatalf("buffer copy changed under us: %q", buf.Text())
	}
	if err := buf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
