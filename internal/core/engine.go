// Package core implements the TeNDaX engine: documents stored natively in
// the embedded database as chains of character instances, with every editing
// action (typing, deleting, copy/paste, layout, structure, notes, versions)
// executed as a real-time database transaction and automatically captured as
// metadata. This is the paper's primary contribution.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tendax/internal/awareness"
	"tendax/internal/db"
	"tendax/internal/txn"
	"tendax/internal/util"
	"tendax/internal/wal"
)

// Right is an access right checked before operations.
type Right string

// Access rights.
const (
	RRead     Right = "read"
	RWrite    Right = "write"
	RGrant    Right = "grant"
	RWorkflow Right = "workflow"
)

// AccessChecker is the hook through which the security subsystem vets
// operations. A nil checker allows everything (single-user embedded mode).
type AccessChecker interface {
	// Check returns nil if user holds right on doc.
	Check(user string, doc util.ID, right Right) error
	// ReadableMask reports, per character, whether user may read it.
	// A nil slice means everything is readable.
	ReadableMask(user string, doc util.ID, ids []util.ID) []bool
}

// ErrDocNotFound reports an unknown document.
var ErrDocNotFound = errors.New("core: document not found")

// ErrRange reports an out-of-range position argument.
var ErrRange = errors.New("core: position out of range")

// Engine hosts all documents of one TeNDaX database.
type Engine struct {
	db    *db.Database
	clock util.Clock
	ids   util.IDGen
	bus   *awareness.Bus
	check AccessChecker

	tDocs     *db.Table
	tChars    *db.Table
	tSpans    *db.Table
	tOps      *db.Table
	tOpChunks *db.Table
	tVersions *db.Table
	tReads    *db.Table
	tProps    *db.Table
	tArchive  *db.Table

	mu   sync.Mutex
	docs map[util.ID]*Document

	// Document-creation observer (SetDocObserver): the incremental
	// indexer registers here so documents born after it primed are
	// picked up without rescanning the docs table.
	obsMu  sync.RWMutex
	docObs func(id util.ID, external bool)

	// Background tombstone compactor (StartCompactor / StopCompactor).
	compactMu   sync.Mutex
	compactErr  error
	compactStop chan struct{}
	compactDone chan struct{}
}

var (
	docsSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "name", Type: db.TString},
		{Name: "creator", Type: db.TString},
		{Name: "created", Type: db.TTime},
		{Name: "modified", Type: db.TTime},
		{Name: "lastauthor", Type: db.TString},
		{Name: "size", Type: db.TInt},
		{Name: "state", Type: db.TString}, // draft | final | external
		{Name: "authors", Type: db.TString},
	}
	charsSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "doc", Type: db.TInt},
		{Name: "r", Type: db.TInt},
		{Name: "author", Type: db.TString},
		{Name: "created", Type: db.TTime},
		{Name: "prev", Type: db.TInt},
		{Name: "next", Type: db.TInt},
		{Name: "deleted", Type: db.TBool},
		{Name: "delby", Type: db.TString},
		{Name: "delat", Type: db.TTime},
		{Name: "srcdoc", Type: db.TInt},
		{Name: "srcchar", Type: db.TInt},
		{Name: "restored", Type: db.TTime}, // undelete instant (zero = never undeleted)
	}
	// Cold tombstones migrated out of the chars table by compaction live
	// here as archive runs: binary-encoded character records packed into
	// fixed-size chunk rows, keyed by the run's surviving hot anchor
	// (NilID for runs at the head of the chain) and ordered by seq.
	archiveSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "doc", Type: db.TInt},
		{Name: "anchor", Type: db.TInt},
		{Name: "seq", Type: db.TInt},
		{Name: "chars", Type: db.TBytes},
	}
	spansSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "doc", Type: db.TInt},
		{Name: "kind", Type: db.TString},
		{Name: "value", Type: db.TString},
		{Name: "startc", Type: db.TInt},
		{Name: "endc", Type: db.TInt},
		{Name: "author", Type: db.TString},
		{Name: "created", Type: db.TTime},
		{Name: "removed", Type: db.TBool},
	}
	opsSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "doc", Type: db.TInt},
		{Name: "user", Type: db.TString},
		{Name: "kind", Type: db.TString},
		{Name: "chars", Type: db.TBytes}, // affected char IDs (first chunk)
		{Name: "ref", Type: db.TInt},     // span ID or referenced op ID
		{Name: "created", Type: db.TTime},
		{Name: "undone", Type: db.TBool},
	}
	// Operations touching many characters spill their ID list into
	// fixed-size continuation rows so no row outgrows a page.
	opChunksSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "op", Type: db.TInt},
		{Name: "seq", Type: db.TInt},
		{Name: "chars", Type: db.TBytes},
	}
	versionsSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "doc", Type: db.TInt},
		{Name: "name", Type: db.TString},
		{Name: "author", Type: db.TString},
		{Name: "at", Type: db.TTime},
	}
	readsSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "doc", Type: db.TInt},
		{Name: "user", Type: db.TString},
		{Name: "at", Type: db.TTime},
	}
	propsSchema = db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "doc", Type: db.TInt},
		{Name: "key", Type: db.TString},
		{Name: "value", Type: db.TString},
	}
)

// NewEngine opens (creating schema as needed) a TeNDaX engine over
// database. clock may be nil (system clock).
func NewEngine(database *db.Database, clock util.Clock) (*Engine, error) {
	return NewEngineShard(database, clock, 0, 1)
}

// NewEngineShard opens an engine that is shard `shard` of `shards` in a
// multi-engine process (see internal/placement). Its ID generator mints
// only from the residue class shard+1 mod shards, so a document ID alone
// determines which shard owns it — no placement table, and IDs minted by
// different shards can never collide. NewEngineShard(db, clock, 0, 1) is
// identical to NewEngine.
func NewEngineShard(database *db.Database, clock util.Clock, shard, shards int) (*Engine, error) {
	if clock == nil {
		clock = util.NewSystemClock()
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("core: invalid shard %d of %d", shard, shards)
	}
	e := &Engine{
		db:    database,
		clock: clock,
		bus:   awareness.NewBus(0),
		docs:  make(map[util.ID]*Document),
	}
	if shards > 1 {
		// Must precede the MaxPK seeding below so Seed lands on the class.
		e.ids.SetStride(uint64(shard), uint64(shards))
	}
	var err error
	if e.tDocs, err = database.CreateTable("docs", docsSchema, "name"); err != nil {
		return nil, err
	}
	if e.tChars, err = database.CreateTable("chars", charsSchema, "doc"); err != nil {
		return nil, err
	}
	if e.tSpans, err = database.CreateTable("spans", spansSchema, "doc"); err != nil {
		return nil, err
	}
	if e.tOps, err = database.CreateTable("ops", opsSchema, "doc"); err != nil {
		return nil, err
	}
	if e.tOpChunks, err = database.CreateTable("opchunks", opChunksSchema, "op"); err != nil {
		return nil, err
	}
	if e.tVersions, err = database.CreateTable("versions", versionsSchema, "doc"); err != nil {
		return nil, err
	}
	if e.tReads, err = database.CreateTable("reads", readsSchema, "doc", "user"); err != nil {
		return nil, err
	}
	if e.tProps, err = database.CreateTable("props", propsSchema, "doc"); err != nil {
		return nil, err
	}
	if e.tArchive, err = database.CreateTable("archive", archiveSchema, "doc", "anchor"); err != nil {
		return nil, err
	}
	// CreateTable returns an existing table with its persisted schema, so
	// a data directory written before the restored column existed would
	// otherwise surface as an index-out-of-range panic on the first row
	// decode. There is no in-place migration yet; fail loudly instead.
	if e.tChars.Schema().Col("restored") < 0 {
		return nil, errors.New("core: chars table predates the restored column; this data directory needs a migration this build does not provide")
	}
	// Seed the ID generator above every persisted primary key.
	for _, t := range []*db.Table{e.tDocs, e.tChars, e.tSpans, e.tOps, e.tOpChunks, e.tVersions, e.tReads, e.tProps, e.tArchive} {
		e.ids.Seed(util.ID(t.MaxPK()))
	}
	return e, nil
}

// SetAccessChecker installs the security hook. Pass nil to disable checks.
func (e *Engine) SetAccessChecker(c AccessChecker) { e.check = c }

// Bus returns the awareness bus.
func (e *Engine) Bus() *awareness.Bus { return e.bus }

// Clock returns the engine clock.
func (e *Engine) Clock() util.Clock { return e.clock }

// DB exposes the underlying database (used by sibling subsystems that
// store their own tables).
func (e *Engine) DB() *db.Database { return e.db }

// Checkpoint takes a fuzzy checkpoint of the underlying database: dirty
// pages flushed up to the current horizon, a begin/end checkpoint pair
// logged, and the redundant log prefix truncated — without pausing editors.
// The server and the db.Options background checkpointer use it to keep
// restart time and log size flat no matter how long the editing history is.
func (e *Engine) Checkpoint() (*wal.CheckpointResult, error) {
	return e.db.FuzzyCheckpoint()
}

// NewID allocates an engine-unique identifier.
func (e *Engine) NewID() util.ID { return e.ids.Next() }

func (e *Engine) allowed(user string, doc util.ID, right Right) error {
	if e.check == nil {
		return nil
	}
	return e.check.Check(user, doc, right)
}

// CheckAccess exposes the engine's access check to sibling subsystems
// (workflow, server) so they enforce the same policy.
func (e *Engine) CheckAccess(user string, doc util.ID, right Right) error {
	return e.allowed(user, doc, right)
}

// withTxnAsync runs fn inside a transaction, retrying on deadlock victims,
// and commits asynchronously: on return the transaction's effects are
// committed and its locks released, but durability is only guaranteed once
// WaitDurable succeeds for the returned LSN. Callers use it to get fsyncs
// out of whatever lock they hold, so concurrent editors share one group
// commit instead of queueing behind each other's disk writes.
func (e *Engine) withTxnAsync(fn func(tx *txn.Txn) error) (wal.LSN, error) {
	const retries = 8
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		tx, err := e.db.Begin()
		if err != nil {
			return 0, err
		}
		if err := fn(tx); err != nil {
			abortErr := tx.Abort()
			if errors.Is(err, txn.ErrDeadlock) && abortErr == nil {
				lastErr = err
				time.Sleep(time.Duration(attempt+1) * time.Millisecond)
				continue
			}
			return 0, err
		}
		lsn, err := tx.CommitAsync()
		if err != nil {
			return 0, err
		}
		return lsn, nil
	}
	return 0, fmt.Errorf("core: giving up after %d deadlock retries: %w", retries, lastErr)
}

// withTxn runs fn inside a transaction, retrying on deadlock victims, and
// returns only once the commit is durable.
func (e *Engine) withTxn(fn func(tx *txn.Txn) error) error {
	lsn, err := e.withTxnAsync(fn)
	if err != nil {
		return err
	}
	return e.db.WaitDurable(lsn)
}

// WaitDurable blocks until the write-ahead log's durable horizon covers
// lsn. Paired with the engine's *Async editing methods, it lets callers
// (the server's connection pipeline) acknowledge an edit only after it is
// on stable storage while other connections keep committing.
func (e *Engine) WaitDurable(lsn wal.LSN) error { return e.db.WaitDurable(lsn) }

// CreateDocument creates a new, empty document owned by user.
func (e *Engine) CreateDocument(user, name string) (*Document, error) {
	id := e.ids.Next()
	now := e.clock.Now()
	err := e.withTxn(func(tx *txn.Txn) error {
		_, err := e.tDocs.Insert(tx, db.Row{
			int64(id), name, user, now, now, user, int64(0), "draft", user,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	d := newDocument(e, id, name, user, now, "draft")
	e.mu.Lock()
	e.docs[id] = d
	e.mu.Unlock()
	e.notifyDocObserver(id, false)
	return d, nil
}

// SetDocObserver registers fn to run after every successful
// CreateDocument / CreateExternalSource commit (external tells which).
// One observer at a time; nil unregisters. fn runs on the creating
// goroutine and must not call back into document mutation.
func (e *Engine) SetDocObserver(fn func(id util.ID, external bool)) {
	e.obsMu.Lock()
	e.docObs = fn
	e.obsMu.Unlock()
}

func (e *Engine) notifyDocObserver(id util.ID, external bool) {
	e.obsMu.RLock()
	fn := e.docObs
	e.obsMu.RUnlock()
	if fn != nil {
		fn(id, external)
	}
}

// CreateExternalSource registers an external document (something outside
// the TeNDaX store that text was pasted from) so lineage can reference it.
func (e *Engine) CreateExternalSource(name string) (util.ID, error) {
	id := e.ids.Next()
	now := e.clock.Now()
	err := e.withTxn(func(tx *txn.Txn) error {
		_, err := e.tDocs.Insert(tx, db.Row{
			int64(id), name, "", now, now, "", int64(0), "external", "",
		})
		return err
	})
	if err != nil {
		return util.NilID, err
	}
	e.notifyDocObserver(id, true)
	return id, nil
}

// OpenDocument returns a handle on the document, loading its character
// chain from the database on first open.
func (e *Engine) OpenDocument(id util.ID) (*Document, error) {
	e.mu.Lock()
	if d, ok := e.docs[id]; ok {
		e.mu.Unlock()
		return d, nil
	}
	e.mu.Unlock()

	row, _, err := e.tDocs.GetByPK(nil, int64(id))
	if errors.Is(err, db.ErrNotFound) {
		return nil, ErrDocNotFound
	}
	if err != nil {
		return nil, err
	}
	d := newDocument(e, id, row[1].(string), row[2].(string), row[3].(time.Time), row[7].(string))
	if err := d.load(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prior, ok := e.docs[id]; ok { // lost a race; use the cached one
		e.mu.Unlock()
		return prior, nil
	}
	e.docs[id] = d
	e.mu.Unlock()
	return d, nil
}

// FindDocument resolves a document by name (first match).
func (e *Engine) FindDocument(name string) (*Document, error) {
	rids, err := e.tDocs.LookupEq("name", name)
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, ErrDocNotFound
	}
	row, err := e.tDocs.Get(nil, rids[0])
	if err != nil {
		return nil, err
	}
	return e.OpenDocument(util.ID(row[0].(int64)))
}

// DocInfo is document-level metadata, gathered automatically during the
// document creation process (paper §2).
type DocInfo struct {
	ID         util.ID
	Name       string
	Creator    string
	Created    time.Time
	Modified   time.Time
	LastAuthor string
	Size       int
	State      string
	Authors    []string
}

// ListDocuments returns metadata for every non-external document.
func (e *Engine) ListDocuments() ([]DocInfo, error) {
	var out []DocInfo
	err := e.tDocs.Scan(nil, func(_ db.RID, row db.Row) (bool, error) {
		if row[7].(string) == "external" {
			return true, nil
		}
		out = append(out, docInfoFromRow(row))
		return true, nil
	})
	return out, err
}

// ExternalSources returns the registered external source documents.
func (e *Engine) ExternalSources() ([]DocInfo, error) {
	var out []DocInfo
	err := e.tDocs.Scan(nil, func(_ db.RID, row db.Row) (bool, error) {
		if row[7].(string) == "external" {
			out = append(out, docInfoFromRow(row))
		}
		return true, nil
	})
	return out, err
}

// DocInfoByID returns metadata for one document.
func (e *Engine) DocInfoByID(id util.ID) (DocInfo, error) {
	row, _, err := e.tDocs.GetByPK(nil, int64(id))
	if errors.Is(err, db.ErrNotFound) {
		return DocInfo{}, ErrDocNotFound
	}
	if err != nil {
		return DocInfo{}, err
	}
	return docInfoFromRow(row), nil
}

func docInfoFromRow(row db.Row) DocInfo {
	var authors []string
	if s := row[8].(string); s != "" {
		// The row stores authors in first-edit order; Document.Info sorts.
		// Normalise here so both metadata paths answer identically (the
		// incremental indexer refreshes from the row, off the doc lock).
		authors = strings.Split(s, ",")
		sort.Strings(authors)
	}
	return DocInfo{
		ID:         util.ID(row[0].(int64)),
		Name:       row[1].(string),
		Creator:    row[2].(string),
		Created:    row[3].(time.Time),
		Modified:   row[4].(time.Time),
		LastAuthor: row[5].(string),
		Size:       int(row[6].(int64)),
		State:      row[7].(string),
		Authors:    authors,
	}
}

// ScanCharMeta streams the metadata of every character instance in the
// store (tombstones included) until fn returns false. Lineage and mining
// build their structures from this stream without opening documents.
func (e *Engine) ScanCharMeta(fn func(doc util.ID, meta CharMeta) bool) error {
	return e.tChars.Scan(nil, func(_ db.RID, row db.Row) (bool, error) {
		ch := charFromRow(row)
		return fn(util.ID(row[1].(int64)), charMetaOf(&ch)), nil
	})
}

// CharByID resolves one character instance anywhere in the store,
// returning its document and metadata (provenance chain walking).
func (e *Engine) CharByID(id util.ID) (util.ID, CharMeta, error) {
	row, _, err := e.tChars.GetByPK(nil, int64(id))
	if errors.Is(err, db.ErrNotFound) {
		return util.NilID, CharMeta{}, fmt.Errorf("core: char %v not found", id)
	}
	if err != nil {
		return util.NilID, CharMeta{}, err
	}
	ch := charFromRow(row)
	return util.ID(row[1].(int64)), charMetaOf(&ch), nil
}

// OpCountOf returns the number of logged operations on a document (an
// activity measure used by visual mining).
func (e *Engine) OpCountOf(doc util.ID) int {
	rids, err := e.tOps.LookupEq("doc", int64(doc))
	if err != nil {
		return 0
	}
	return len(rids)
}

// encodeIDs packs char IDs for the ops table payload.
func encodeIDs(ids []util.ID) []byte {
	out := make([]byte, 0, len(ids)*8)
	for _, id := range ids {
		out = append(out, id.Bytes()...)
	}
	return out
}

// decodeIDs unpacks an ops payload.
func decodeIDs(b []byte) []util.ID {
	out := make([]util.ID, 0, len(b)/8)
	for len(b) >= 8 {
		out = append(out, util.IDFromBytes(b[:8]))
		b = b[8:]
	}
	return out
}
