package core

import (
	"errors"
	"sort"
	"time"

	"tendax/internal/awareness"
	"tendax/internal/db"
	"tendax/internal/txn"
	"tendax/internal/util"
	"tendax/internal/wal"
)

// Version is a named point-in-time snapshot of a document. Because deletion
// is logical, a version costs one row: reconstruction is a filter over the
// stable character chain.
type Version struct {
	ID     util.ID
	Name   string
	Author string
	At     time.Time
}

// ErrVersionNotFound reports an unknown version.
var ErrVersionNotFound = errors.New("core: version not found")

// CreateVersion snapshots the document's current state under a name.
func (d *Document) CreateVersion(user, name string) (Version, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return Version{}, err
	}
	v, lsn, err := d.createVersionAsync(user, name)
	if err != nil {
		return Version{}, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return Version{}, err
	}
	return v, nil
}

// createVersionAsync does CreateVersion's locked work with an
// asynchronous commit; the durability wait is the caller's, outside d.mu
// (group-commit rule).
func (d *Document) createVersionAsync(user, name string) (Version, wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.eng.ids.Next()
	now := d.eng.clock.Now()
	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		_, err := d.eng.tVersions.Insert(tx, db.Row{
			int64(id), int64(d.id), name, user, now,
		})
		return err
	})
	if err != nil {
		return Version{}, 0, err
	}
	v := Version{ID: id, Name: name, Author: user, At: now}
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvVersion, User: user, Name: name, At: now,
	})
	return v, lsn, nil
}

// Versions lists the document's versions, oldest first.
func (d *Document) Versions() ([]Version, error) {
	rids, err := d.eng.tVersions.LookupEq("doc", int64(d.id))
	if err != nil {
		return nil, err
	}
	out := make([]Version, 0, len(rids))
	for _, rid := range rids {
		row, err := d.eng.tVersions.Get(nil, rid)
		if err != nil {
			continue
		}
		out = append(out, Version{
			ID:     util.ID(row[0].(int64)),
			Name:   row[2].(string),
			Author: row[3].(string),
			At:     row[4].(time.Time),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// VersionText reconstructs the document text as of the given version,
// against the latest committed snapshot: the reconstruction never holds
// the document lock.
func (d *Document) VersionText(versionID util.ID) (string, error) {
	return d.Snapshot().VersionText(versionID)
}

// TextAt reconstructs the text at an arbitrary instant (time travel over
// the editing history), against the latest committed snapshot. The first
// pre-horizon reconstruction after open loads the lazily parked cold
// archive.
func (d *Document) TextAt(t time.Time) string {
	return d.timeTravelTree(d.snap.Load().tree).TextAt(t)
}

// ReadEvent is one recorded read of a document.
type ReadEvent struct {
	Doc  util.ID
	User string
	At   time.Time
}

// ReadEvents returns all recorded reads of the document, oldest first.
func (d *Document) ReadEvents() ([]ReadEvent, error) {
	return d.eng.ReadEventsOf(d.id)
}

// ReadEventsOf returns all recorded reads of a document.
func (e *Engine) ReadEventsOf(doc util.ID) ([]ReadEvent, error) {
	rids, err := e.tReads.LookupEq("doc", int64(doc))
	if err != nil {
		return nil, err
	}
	out := make([]ReadEvent, 0, len(rids))
	for _, rid := range rids {
		row, err := e.tReads.Get(nil, rid)
		if err != nil {
			continue
		}
		out = append(out, ReadEvent{
			Doc:  util.ID(row[1].(int64)),
			User: row[2].(string),
			At:   row[3].(time.Time),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out, nil
}

// ReadsByUser returns all read events of one user across documents (the
// raw material for dynamic folders like "read by me this week").
func (e *Engine) ReadsByUser(user string) ([]ReadEvent, error) {
	rids, err := e.tReads.LookupEq("user", user)
	if err != nil {
		return nil, err
	}
	out := make([]ReadEvent, 0, len(rids))
	for _, rid := range rids {
		row, err := e.tReads.Get(nil, rid)
		if err != nil {
			continue
		}
		out = append(out, ReadEvent{
			Doc:  util.ID(row[1].(int64)),
			User: row[2].(string),
			At:   row[3].(time.Time),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out, nil
}
