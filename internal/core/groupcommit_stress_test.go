package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tendax/internal/db"
	"tendax/internal/util"
)

// The stress tests below run ≥8 concurrent writers against a file-backed
// store (group commit active) and then reopen the database, verifying that
// no acknowledged character was lost and that the durable operation log
// matches what was acknowledged. Run with -race they also exercise the
// commit pipeline's lock hand-off (CommitAsync releases locks before the
// fsync) and the deadlock-retry loop in Engine.withTxn, which same-document
// appenders hit constantly on the shared docs-table row.

const (
	stressWriters = 8
	stressOps     = 20
)

// writerRune gives each writer a distinctive letter so lost or duplicated
// characters are attributable.
func writerRune(i int) string { return string(rune('a' + i)) }

func reopenEngine(t *testing.T, dir string) (*Engine, *db.Database) {
	t.Helper()
	database, err := db.Open(db.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(database, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, database
}

func TestStressConcurrentAppendSharedDoc(t *testing.T) {
	if testing.Short() {
		t.Skip("8-writer file-backed stress run skipped in -short mode")
	}
	dir := t.TempDir()
	eng, database := reopenEngine(t, dir)
	doc, err := eng.CreateDocument("u0", "shared")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, stressWriters)
	for i := 0; i < stressWriters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i)
			for j := 0; j < stressOps; j++ {
				if _, err := doc.AppendText(user, writerRune(i)); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := stressWriters * stressOps
	text := doc.Text()
	if len(text) != total {
		t.Fatalf("lost characters: len=%d want %d", len(text), total)
	}
	for i := 0; i < stressWriters; i++ {
		if n := strings.Count(text, writerRune(i)); n != stressOps {
			t.Errorf("writer %d: %d of %d characters survived", i, n, stressOps)
		}
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(doc.History()); got != total {
		t.Fatalf("in-memory op log has %d ops, want %d", got, total)
	}
	docID := doc.ID()
	if err := database.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acknowledged must be durable: reopen from disk.
	eng2, db2 := reopenEngine(t, dir)
	defer db2.Close()
	doc2, err := eng2.OpenDocument(docID)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Text() != text {
		t.Fatalf("durable text diverges:\n mem %q\n db  %q", text, doc2.Text())
	}
	if got := len(doc2.History()); got != total {
		t.Fatalf("durable op log has %d ops, want %d", got, total)
	}
}

func TestStressConcurrentAppendDistinctDocs(t *testing.T) {
	if testing.Short() {
		t.Skip("8-writer file-backed stress run skipped in -short mode")
	}
	dir := t.TempDir()
	eng, database := reopenEngine(t, dir)
	docs := make([]*Document, stressWriters)
	for i := range docs {
		var err error
		if docs[i], err = eng.CreateDocument(fmt.Sprintf("u%d", i), fmt.Sprintf("doc%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	syncs0 := database.Log().SyncCount()
	var wg sync.WaitGroup
	errs := make(chan error, stressWriters)
	for i := 0; i < stressWriters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i)
			for j := 0; j < stressOps; j++ {
				if _, err := docs[i].AppendText(user, writerRune(i)); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ids := make([]util.ID, stressWriters)
	for i, d := range docs {
		want := strings.Repeat(writerRune(i), stressOps)
		if d.Text() != want {
			t.Fatalf("doc %d: got %q want %q", i, d.Text(), want)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		ids[i] = d.ID()
	}
	// A file-backed open must have started the group-commit flusher — this
	// guards the wiring (db.Open, DisableGroupCommit default) that the
	// whole pipeline depends on. The realized batch size is reported but
	// not asserted: on a loaded single-core machine a short run can
	// legitimately serialize with no commit overlap.
	if !database.Log().GroupCommit() {
		t.Error("file-backed database did not start the group-commit flusher")
	}
	ops := uint64(stressWriters * stressOps)
	if syncs := database.Log().SyncCount() - syncs0; syncs >= ops {
		t.Logf("note: %d syncs for %d durable commits (no batching this run)", syncs, ops)
	}
	if err := database.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, db2 := reopenEngine(t, dir)
	defer db2.Close()
	for i, id := range ids {
		d, err := eng2.OpenDocument(id)
		if err != nil {
			t.Fatal(err)
		}
		want := strings.Repeat(writerRune(i), stressOps)
		if d.Text() != want {
			t.Fatalf("durable doc %d: got %q want %q", i, d.Text(), want)
		}
		if got := len(d.History()); got != stressOps {
			t.Fatalf("durable op log of doc %d has %d ops, want %d", i, got, stressOps)
		}
	}
}
