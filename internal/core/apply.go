package core

import (
	"fmt"
	"sync"
	"time"

	"tendax/internal/awareness"
	"tendax/internal/db"
	"tendax/internal/texttree"
	"tendax/internal/txn"
	"tendax/internal/util"
	"tendax/internal/wal"
)

// This file implements the protocol-v2 editing hot path: a batch of edit
// operations — inserts and notes anchored by character-instance ID,
// deletes and layouts addressing explicit instances — applied as ONE
// database transaction under ONE document-lock acquisition, confirmed by
// ONE group-commit wait, and announced by ONE awareness push. A pipelining
// client coalesces keystrokes into these batches, so the per-edit costs
// that bound v1 typing throughput (request round-trip, lock handoff,
// fsync wait, push fan-out) are paid once per batch instead of once per
// keystroke.

// Edit-op kinds accepted by Apply.
const (
	EditInsert = "insert"
	EditDelete = "delete"
	EditLayout = "layout"
	EditNote   = "note"
)

// EditOp is one operation of a batch. Anchoring:
//
//   - insert: UseAnchor chains the text after instance Anchor (NilID =
//     front of document — a tombstone anchor is valid and resolves to
//     where its text would resume); AnchorPrev chains after the last
//     instance created by an earlier insert of the same batch (the
//     pipelined-typing case; the caller seeds cross-batch continuation by
//     rewriting the first AnchorPrev op to an explicit anchor); otherwise
//     Pos is the v1 fallback, resolved against the batch-start state.
//   - delete: Chars lists the instances to tombstone (already-deleted and
//     archived ones are skipped — deletion by identity commutes);
//     otherwise Pos/N resolves against the batch-start state.
//   - layout: Chars lists the spanned instances (first/last anchor the
//     span); AnchorPrev spans everything the previous insert op of this
//     batch created (the "type a heading and style it, one transaction"
//     idiom); Pos/N fallback.
//   - note: UseAnchor anchors at instance Anchor; Pos fallback (the
//     instance at Pos).
type EditOp struct {
	Kind       string
	Anchor     util.ID
	UseAnchor  bool
	AnchorPrev bool
	Pos        int
	Text       string
	N          int
	Chars      []util.ID
	Span       string // layout span kind
	Value      string // layout span value
}

// EditResult reports one applied op: the logged operation ID, the
// character instances the op created (insert/note) or flipped (delete),
// the span created (layout/note), and the visible position the op
// resolved to at commit time.
type EditResult struct {
	OpID util.ID
	IDs  []util.ID
	Span util.ID
	Pos  int
}

// Apply is ApplyAsync plus the durability wait: when it returns, every op
// of the batch is on stable storage.
func (d *Document) Apply(user string, ops []EditOp) ([]EditResult, error) {
	res, lsn, err := d.ApplyAsync(user, ops)
	if err != nil {
		return nil, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return nil, err
	}
	return res, nil
}

// ApplyAsync applies a batch of edit operations as one transaction: one
// document-lock acquisition, one WAL commit, one awareness push carrying
// the whole batch. The batch is atomic — if any op fails to resolve, no
// op is applied. Durability is left to the caller (Engine.WaitDurable on
// the returned LSN), outside the document lock, so concurrent batches
// share one group-commit fsync.
func (d *Document) ApplyAsync(user string, ops []EditOp) ([]EditResult, wal.LSN, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return nil, 0, err
	}
	if len(ops) == 0 {
		return nil, 0, fmt.Errorf("core: empty edit batch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	// Staging state is pooled and arena-backed: a steady stream of batches
	// recycles the same stagedOp slices, per-batch maps and character-record
	// blocks instead of re-allocating them per commit. Nothing reachable
	// from st survives this call (the buffer, the op log and the results
	// all take their own copies), so releasing on every return is safe.
	st := batchPool.Get().(*batchState)
	defer func() {
		st.reset()
		batchPool.Put(st)
	}()
	st.user = user
	st.now = d.eng.clock.Now()
	st.head = d.buf.Head()
	if err := d.stageBatchLocked(st, ops); err != nil {
		return nil, 0, err
	}

	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		return d.persistBatchLocked(tx, st)
	})
	if err != nil {
		return nil, 0, err
	}

	// Transaction committed: fold the batch into the buffer op by op,
	// resolving the positional form of every item as the state evolves,
	// then publish the whole batch as one awareness event.
	results, items, err := d.applyStagedLocked(st)
	if err != nil {
		return nil, 0, err
	}
	d.noteAuthorLocked(user, st.now)
	d.publishBatchLocked(user, st, items, st.now)
	return results, lsn, nil
}

// batchState is a staged edit batch: every row mutation computed and
// validated against the document state plus the batch's own earlier ops,
// before anything is persisted or applied. Instances are pooled (see
// batchPool): all slices, maps and the character arena are recycled
// across batches, so the steady-state commit path allocates per batch
// only what outlives it (result IDs, op-log records).
type batchState struct {
	user string
	now  time.Time
	ops  []stagedOp

	created    []*texttree.Char // new instances, creation order (final records)
	createdSet map[util.ID]*texttree.Char
	updated    map[util.ID]*texttree.Char // existing instances with rewritten links / tombstone state
	spans      []db.Row                   // span rows to insert
	opRecs     []*opRecord                // one log row per op
	sizeDelta  int                        // visible-length change of the whole batch
	head       util.ID                    // staged chain head

	arena charArena // backing store for per-batch character records
}

// charArena hands out blocks of texttree.Char with pool lifetime. Records
// allocated here are only reachable from the owning batchState: the buffer
// copies runs on InsertRun, persistence boxes fields into db.Row values,
// and results carry IDs, never record pointers — so resetting the arena
// when the batch is released cannot be observed. A block is never grown in
// place (createdSet holds pointers into it); exhaustion allocates a fresh,
// larger block and strands the remainder of the old one, which stays alive
// exactly as long as the pointers into it do.
type charArena struct {
	buf  []texttree.Char
	next int
}

func (a *charArena) alloc(n int) []texttree.Char {
	if a.next+n > len(a.buf) {
		size := 4 * n
		if size < 1024 {
			size = 1024
		}
		a.buf = make([]texttree.Char, size)
		a.next = 0
	}
	s := a.buf[a.next : a.next+n : a.next+n]
	a.next += n
	return s
}

func (a *charArena) reset() { a.next = 0 }

var batchPool = sync.Pool{New: func() interface{} {
	return &batchState{
		createdSet: make(map[util.ID]*texttree.Char),
		updated:    make(map[util.ID]*texttree.Char),
	}
}}

// reset clears the state for reuse, zeroing slice elements so recycled
// batches do not pin the previous batch's op records and ID slices.
func (st *batchState) reset() {
	st.user = ""
	st.now = time.Time{}
	for i := range st.ops {
		st.ops[i] = stagedOp{}
	}
	st.ops = st.ops[:0]
	for i := range st.created {
		st.created[i] = nil
	}
	st.created = st.created[:0]
	clear(st.createdSet)
	clear(st.updated)
	for i := range st.spans {
		st.spans[i] = nil
	}
	st.spans = st.spans[:0]
	for i := range st.opRecs {
		st.opRecs[i] = nil
	}
	st.opRecs = st.opRecs[:0]
	st.sizeDelta = 0
	st.head = util.NilID
	st.arena.reset()
}

// stagedOp carries what the apply phase needs to replay one op against
// the buffer after commit.
type stagedOp struct {
	kind    string
	opID    util.ID
	spanID  util.ID
	prev    util.ID         // insert: resolved predecessor
	chars   []texttree.Char // insert: records as created (visible), value copies
	deleted []util.ID       // delete: instances whose visibility flips
	ids     []util.ID       // layout: spanned instances; note: anchor
	text    string
	pos     int // pos-fallback ops: requested position (apply recomputes committed pos)
	n       int
}

// charLocked resolves an instance against the staged state first, then
// the hot buffer; d.mu is held by the batch pipeline.
func (st *batchState) charLocked(d *Document, id util.ID) (*texttree.Char, bool) {
	if ch, ok := st.createdSet[id]; ok {
		return ch, true
	}
	if ch, ok := st.updated[id]; ok {
		return ch, true
	}
	return d.buf.Char(id)
}

// succLocked returns the staged chain successor of prev (NilID = staged
// head); d.mu is held by the batch pipeline.
func (st *batchState) succLocked(d *Document, prev util.ID) util.ID {
	if prev.IsNil() {
		return st.head
	}
	if ch, ok := st.charLocked(d, prev); ok {
		return ch.Next
	}
	return util.NilID
}

// setLinkLocked replaces the staged record of an instance, copying a hot
// record on first touch so published snapshots keep their frozen state;
// d.mu is held by the batch pipeline.
func (st *batchState) setLinkLocked(d *Document, id util.ID, mut func(*texttree.Char)) error {
	if ch, ok := st.createdSet[id]; ok {
		mut(ch)
		return nil
	}
	if ch, ok := st.updated[id]; ok {
		mut(ch)
		return nil
	}
	ch, ok := d.buf.Char(id)
	if !ok {
		return fmt.Errorf("%w: %v", texttree.ErrUnknownChar, id)
	}
	cp := *ch
	mut(&cp)
	st.updated[id] = &cp
	return nil
}

// stageBatchLocked resolves every op of the batch in order against the evolving
// staged state, filling the (pooled, pre-reset) st. It never touches the
// buffer or the database: on error the document is exactly as before.
func (d *Document) stageBatchLocked(st *batchState, ops []EditOp) error {
	user, now := st.user, st.now
	lastInsert := util.NilID    // last instance created by an earlier insert op
	var lastInsertIDs []util.ID // all instances of that insert

	for i, op := range ops {
		switch op.Kind {
		case EditInsert:
			prev, err := d.resolveInsertAnchorLocked(st, op, lastInsert)
			if err != nil {
				return fmt.Errorf("core: batch op %d: %w", i, err)
			}
			runes := []rune(op.Text)
			if len(runes) == 0 {
				return fmt.Errorf("core: batch op %d: empty insert", i)
			}
			succ := st.succLocked(d, prev)
			ids := make([]util.ID, len(runes))
			for j := range runes {
				ids[j] = d.eng.ids.Next()
			}
			// Two arena blocks per insert: the records as created (replayed
			// into the buffer — a later delete op of the same batch must not
			// leak into them) and the final records (mutable via setLink,
			// persisted with their end-of-batch state).
			sop := stagedOp{kind: op.Kind, opID: d.eng.ids.Next(), prev: prev,
				text: op.Text, chars: st.arena.alloc(len(runes))}
			recs := st.arena.alloc(len(runes))
			for j, r := range runes {
				ch := texttree.Char{ID: ids[j], Rune: r, Author: user, Created: now}
				if j == 0 {
					ch.Prev = prev
				} else {
					ch.Prev = ids[j-1]
				}
				if j == len(runes)-1 {
					ch.Next = succ
				} else {
					ch.Next = ids[j+1]
				}
				sop.chars[j] = ch // value copy: the record as created
				recs[j] = ch
				st.created = append(st.created, &recs[j])
				st.createdSet[ch.ID] = &recs[j]
			}
			if prev.IsNil() {
				st.head = ids[0]
			} else if err := st.setLinkLocked(d, prev, func(c *texttree.Char) { c.Next = ids[0] }); err != nil {
				return fmt.Errorf("core: batch op %d: %w", i, err)
			}
			if !succ.IsNil() {
				if err := st.setLinkLocked(d, succ, func(c *texttree.Char) { c.Prev = ids[len(ids)-1] }); err != nil {
					return fmt.Errorf("core: batch op %d: %w", i, err)
				}
			}
			st.sizeDelta += len(runes)
			lastInsert = ids[len(ids)-1]
			lastInsertIDs = ids
			st.opRecs = append(st.opRecs, &opRecord{ID: sop.opID, User: user,
				Kind: "insert", CharIDs: ids, Created: now})
			st.ops = append(st.ops, sop)

		case EditDelete:
			targets := op.Chars
			if len(targets) == 0 {
				if op.N <= 0 {
					return fmt.Errorf("core: batch op %d: delete of %d chars", i, op.N)
				}
				targets = d.buf.RangeIDs(op.Pos, op.N)
				if len(targets) != op.N {
					return fmt.Errorf("core: batch op %d: %w: delete [%d,%d) of %d chars",
						i, ErrRange, op.Pos, op.Pos+op.N, d.buf.Len())
				}
			}
			var affected []util.ID
			for _, id := range targets {
				ch, ok := st.charLocked(d, id)
				if !ok {
					// Compaction may have archived the tombstone since the
					// client saw it — archived instances are deleted by
					// construction, so the delete already holds.
					arch, err := d.ensureArchiveLocked()
					if err != nil {
						return fmt.Errorf("core: batch op %d: %w", i, err)
					}
					if arch.Contains(id) {
						continue
					}
					return fmt.Errorf("core: batch op %d: %w: %v", i, texttree.ErrUnknownChar, id)
				}
				if ch.Deleted {
					continue // deletion by identity commutes
				}
				if err := st.setLinkLocked(d, id, func(c *texttree.Char) {
					c.Deleted = true
					c.DeletedBy = user
					c.DeletedAt = now
					c.Restored = time.Time{}
				}); err != nil {
					return fmt.Errorf("core: batch op %d: %w", i, err)
				}
				affected = append(affected, id)
			}
			sop := stagedOp{kind: op.Kind, opID: d.eng.ids.Next(), deleted: affected,
				pos: op.Pos, n: len(affected)}
			st.sizeDelta -= len(affected)
			st.opRecs = append(st.opRecs, &opRecord{ID: sop.opID, User: user,
				Kind: "delete", CharIDs: affected, Created: now})
			st.ops = append(st.ops, sop)

		case EditLayout:
			ids := op.Chars
			if len(ids) == 0 && op.AnchorPrev {
				if len(lastInsertIDs) == 0 {
					return fmt.Errorf("core: batch op %d: prev anchor without a prior insert", i)
				}
				ids = lastInsertIDs
			}
			if len(ids) == 0 {
				if op.N <= 0 {
					return fmt.Errorf("core: batch op %d: layout over %d chars", i, op.N)
				}
				ids = d.buf.RangeIDs(op.Pos, op.N)
				if len(ids) != op.N {
					return fmt.Errorf("core: batch op %d: %w: layout [%d,%d) of %d",
						i, ErrRange, op.Pos, op.Pos+op.N, d.buf.Len())
				}
			}
			for _, id := range ids {
				if _, ok := st.charLocked(d, id); !ok {
					return fmt.Errorf("core: batch op %d: %w: %v", i, texttree.ErrUnknownChar, id)
				}
			}
			spanID := d.eng.ids.Next()
			sop := stagedOp{kind: op.Kind, opID: d.eng.ids.Next(), spanID: spanID,
				ids: ids, n: len(ids)}
			st.spans = append(st.spans, db.Row{
				int64(spanID), int64(d.id), op.Span, op.Value,
				int64(ids[0]), int64(ids[len(ids)-1]), user, now, false,
			})
			st.opRecs = append(st.opRecs, &opRecord{ID: sop.opID, User: user,
				Kind: "layout", Ref: spanID, Created: now})
			st.ops = append(st.ops, sop)

		case EditNote:
			var anchor util.ID
			switch {
			case op.UseAnchor:
				anchor = op.Anchor
				if _, ok := st.charLocked(d, anchor); !ok {
					return fmt.Errorf("core: batch op %d: %w: %v", i, texttree.ErrUnknownChar, anchor)
				}
			case op.AnchorPrev:
				if lastInsert.IsNil() {
					return fmt.Errorf("core: batch op %d: prev anchor without a prior insert", i)
				}
				anchor = lastInsert
			default:
				id, ok := d.buf.IDAt(op.Pos)
				if !ok {
					return fmt.Errorf("core: batch op %d: %w: note at %d of %d",
						i, ErrRange, op.Pos, d.buf.Len())
				}
				anchor = id
			}
			spanID := d.eng.ids.Next()
			sop := stagedOp{kind: op.Kind, opID: d.eng.ids.Next(), spanID: spanID,
				ids: []util.ID{anchor}, text: op.Text}
			st.spans = append(st.spans, db.Row{
				int64(spanID), int64(d.id), SpanNote, op.Text,
				int64(anchor), int64(anchor), user, now, false,
			})
			st.opRecs = append(st.opRecs, &opRecord{ID: sop.opID, User: user,
				Kind: "layout", Ref: spanID, Created: now})
			st.ops = append(st.ops, sop)

		default:
			return fmt.Errorf("core: batch op %d: unknown kind %q", i, op.Kind)
		}
	}
	return nil
}

// resolveInsertAnchorLocked turns an insert op's anchor into the chain
// predecessor the new text follows.
func (d *Document) resolveInsertAnchorLocked(st *batchState, op EditOp, lastInsert util.ID) (util.ID, error) {
	switch {
	case op.AnchorPrev:
		if lastInsert.IsNil() {
			return util.NilID, fmt.Errorf("core: prev anchor without a prior insert in the batch")
		}
		return lastInsert, nil
	case op.UseAnchor:
		if op.Anchor.IsNil() {
			return util.NilID, nil // front of document
		}
		if _, ok := st.charLocked(d, op.Anchor); ok {
			return op.Anchor, nil
		}
		// The anchor may have been archived by compaction since the client
		// learned it. Every archived instance is invisible, so inserting
		// after its run's surviving hot anchor lands at the same visible
		// position the archived instance's text would resume at.
		arch, err := d.ensureArchiveLocked()
		if err != nil {
			return util.NilID, err
		}
		if hot, ok := arch.AnchorOf(op.Anchor); ok {
			return hot, nil
		}
		return util.NilID, fmt.Errorf("core: unknown anchor %v", op.Anchor)
	default:
		prev, err := d.buf.PredecessorForInsert(op.Pos)
		if err != nil {
			return util.NilID, fmt.Errorf("%w: insert at %d of %d", ErrRange, op.Pos, d.buf.Len())
		}
		return prev, nil
	}
}

// persistBatchLocked writes the staged batch inside one transaction: every new
// character row in one batch insert (final link state, so each row is
// written exactly once even when a later op of the same batch rewired
// it), link/tombstone rewrites of pre-existing rows, span rows, one log
// row per op, and the document-row refresh.
func (d *Document) persistBatchLocked(tx *txn.Txn, st *batchState) error {
	if len(st.created) > 0 {
		rows := make([]db.Row, len(st.created))
		for i, ch := range st.created {
			rows[i] = d.rowFromChar(ch)
		}
		if _, err := d.eng.tChars.InsertBatch(tx, rows); err != nil {
			return err
		}
	}
	for id, ch := range st.updated {
		if err := d.eng.tChars.UpdateByPK(tx, int64(id), d.rowFromChar(ch)); err != nil {
			return err
		}
	}
	for _, row := range st.spans {
		if _, err := d.eng.tSpans.Insert(tx, row); err != nil {
			return err
		}
	}
	for _, rec := range st.opRecs {
		if err := d.writeOpRow(tx, rec); err != nil {
			return err
		}
	}
	return d.updateDocRowLocked(tx, st.user, st.now, d.buf.Len()+st.sizeDelta)
}

// applyStagedLocked folds the committed batch into the buffer op by op and
// returns the per-op results plus the positional batch items for the
// awareness push. Caller holds d.mu; the transaction has committed.
func (d *Document) applyStagedLocked(st *batchState) ([]EditResult, []awareness.BatchItem, error) {
	results := make([]EditResult, 0, len(st.ops))
	var items []awareness.BatchItem
	for _, sop := range st.ops {
		switch sop.kind {
		case EditInsert:
			pos := 0
			if !sop.prev.IsNil() {
				r, ok := d.buf.RankOf(sop.prev)
				if !ok {
					return nil, nil, fmt.Errorf("core: buffer diverged: lost anchor %v", sop.prev)
				}
				pos = r
				if p, vis := d.buf.PosOf(sop.prev); vis {
					pos = p + 1
				}
			}
			// One batched splice for the whole run: the buffer recomputes the
			// chain links itself and copies the records, so the arena-backed
			// staging slice is reusable the moment this returns.
			if _, err := d.buf.InsertRun(sop.prev, sop.chars); err != nil {
				return nil, nil, fmt.Errorf("core: buffer diverged: %w", err)
			}
			ids := make([]util.ID, len(sop.chars))
			for j := range sop.chars {
				ids[j] = sop.chars[j].ID
			}
			items = append(items, awareness.BatchItem{Kind: awareness.EvInsert,
				Pos: pos, Text: sop.text, N: len(ids), IDs: ids})
			results = append(results, EditResult{OpID: sop.opID, IDs: ids, Pos: pos})

		case EditDelete:
			resPos := sop.pos
			for k, id := range sop.deleted {
				pos, vis := d.buf.PosOf(id)
				if !vis {
					return nil, nil, fmt.Errorf("core: buffer diverged: %v already hidden", id)
				}
				if k == 0 {
					resPos = pos
				}
				if err := d.buf.Delete(id, st.user, st.now); err != nil {
					return nil, nil, fmt.Errorf("core: buffer diverged: %w", err)
				}
				// Consecutive targets that collapse onto the same visible
				// position merge into one contiguous positional item.
				if n := len(items) - 1; n >= 0 && items[n].Kind == awareness.EvDelete &&
					k > 0 && items[n].Pos == pos {
					items[n].N++
					items[n].IDs = append(items[n].IDs, id)
				} else {
					items = append(items, awareness.BatchItem{Kind: awareness.EvDelete,
						Pos: pos, N: 1, IDs: []util.ID{id}})
				}
			}
			results = append(results, EditResult{OpID: sop.opID, IDs: sop.deleted, Pos: resPos})

		case EditLayout:
			pos := 0
			if p, ok := d.buf.RankOf(sop.ids[0]); ok {
				pos = p
			}
			items = append(items, awareness.BatchItem{Kind: awareness.EvLayout,
				Pos: pos, N: sop.n})
			results = append(results, EditResult{OpID: sop.opID, Span: sop.spanID, Pos: pos})

		case EditNote:
			pos := 0
			if p, ok := d.buf.RankOf(sop.ids[0]); ok {
				pos = p
			}
			items = append(items, awareness.BatchItem{Kind: awareness.EvNote,
				Pos: pos, Text: sop.text})
			results = append(results, EditResult{OpID: sop.opID, Span: sop.spanID,
				IDs: sop.ids, Pos: pos})
		}
		rec := *st.opRecs[len(results)-1]
		d.ops = append(d.ops, rec)
	}
	return results, items, nil
}

// publishBatchLocked announces the committed batch as ONE awareness event:
// a single-item batch keeps the legacy event kind (v1 subscribers replay
// it natively), a multi-item batch publishes EvBatch with the items in
// order. Either way the batch consumes one sequence number.
func (d *Document) publishBatchLocked(user string, st *batchState, items []awareness.BatchItem, now time.Time) {
	opID := util.NilID
	if len(st.opRecs) > 0 {
		opID = st.opRecs[0].ID
	}
	ev := awareness.Event{Doc: d.id, User: user, OpID: opID, At: now}
	if len(items) == 1 {
		it := items[0]
		ev.Kind = it.Kind
		ev.Pos = it.Pos
		ev.Text = it.Text
		ev.N = it.N
		ev.IDs = it.IDs
	} else {
		ev.Kind = awareness.EvBatch
		ev.Batch = items
	}
	d.publishEventLocked(ev)
}
