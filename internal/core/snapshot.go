package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tendax/internal/db"
	"tendax/internal/texttree"
	"tendax/internal/util"
)

// DocSnapshot is the document's MVCC read surface: an immutable view of
// the text as of one committed operation, plus read helpers that resolve
// spans, metadata, versions and diffs against that single view. Taking a
// snapshot is O(1) and never blocks writers; every method on it runs
// without touching the document lock, so any number of readers (renderers,
// resyncs, diffs, searches, slow sockets) proceed while editors keep
// committing. TeNDaX makes every edit a transaction, so read-mostly
// collaborative traffic must come off the write path entirely — this type
// is where it comes off.
//
// Writers publish a fresh snapshot atomically at each commit; a snapshot
// already handed out is frozen forever and reclaimed by the garbage
// collector once its last reader drops it.
type DocSnapshot struct {
	d   *Document
	t   *texttree.Snapshot
	seq uint64
}

// Snapshot returns the document's current committed state as an immutable
// snapshot. Acquisition is a single atomic load.
func (d *Document) Snapshot() *DocSnapshot {
	p := d.snap.Load()
	return &DocSnapshot{d: d, t: p.tree, seq: p.seq}
}

// SnapshotSeq returns the latest snapshot together with an awareness-bus
// sequence number S guaranteed consistent with it: the snapshot contains
// every text-mutating event with seq ≤ S and none with seq > S. Writers
// store the (snapshot, seq) pair atomically with the sequence-number
// assignment under the bus lock, so reading the bus sequence first and
// accepting only a pair at or below it closes the race where an edit
// commits between the two reads and the client then drops its push as a
// pre-snapshot duplicate. The retry loop only spins while edits land in
// the nanoseconds-wide window; the fallback answer (the pair's own seq) is
// still drop-free, merely unaware of presence events published since.
func (d *Document) SnapshotSeq() (*DocSnapshot, uint64) {
	for i := 0; i < 4; i++ {
		s := d.eng.bus.Seq(d.id)
		p := d.snap.Load()
		if p.seq <= s {
			return &DocSnapshot{d: d, t: p.tree, seq: p.seq}, s
		}
	}
	p := d.snap.Load()
	return &DocSnapshot{d: d, t: p.tree, seq: p.seq}, p.seq
}

// Seq returns the awareness-bus sequence number of the event that
// announced this snapshot's state: every text-mutating event with a
// sequence number at or below it is contained in the snapshot.
func (s *DocSnapshot) Seq() uint64 { return s.seq }

// Tree exposes the underlying texttree snapshot for bulk character-level
// access (tests, analyzers).
func (s *DocSnapshot) Tree() *texttree.Snapshot { return s.t }

// Doc returns the snapshotted document's ID.
func (s *DocSnapshot) Doc() util.ID { return s.d.id }

// Version identifies the committed buffer state this snapshot captured;
// it increases monotonically with every committed text mutation.
func (s *DocSnapshot) Version() uint64 { return s.t.Version() }

// Len returns the number of visible characters.
func (s *DocSnapshot) Len() int { return s.t.Len() }

// TotalLen returns the number of character instances, tombstones included.
func (s *DocSnapshot) TotalLen() int { return s.t.TotalLen() }

// Text returns the full visible text without access filtering.
func (s *DocSnapshot) Text() string { return s.t.Text() }

// TextAt reconstructs the text as of instant t (time travel), as seen by
// this snapshot: edits committed after the snapshot do not exist in it.
// The first pre-horizon reconstruction loads the lazily parked archive.
func (s *DocSnapshot) TextAt(t time.Time) string {
	return s.d.timeTravelTree(s.t).TextAt(t)
}

// TextFor returns the text user may read, eliding characters masked by
// range ACLs — the same fine-grained security filter as Document.TextFor,
// applied to one consistent view.
func (s *DocSnapshot) TextFor(user string) (string, error) {
	if err := s.d.eng.allowed(user, s.d.id, RRead); err != nil {
		return "", err
	}
	if s.d.eng.check == nil {
		return s.t.Text(), nil
	}
	ids := s.t.VisibleIDs()
	mask := s.d.eng.check.ReadableMask(user, s.d.id, ids)
	var sb strings.Builder
	i := 0
	s.t.WalkVisible(func(ch *texttree.Char) bool {
		if mask == nil || mask[i] {
			sb.WriteRune(ch.Rune)
		}
		i++
		return true
	})
	return sb.String(), nil
}

// CharMetaAt returns the metadata of the visible character at pos.
func (s *DocSnapshot) CharMetaAt(pos int) (CharMeta, error) {
	ch, ok := s.t.CharAt(pos)
	if !ok {
		return CharMeta{}, fmt.Errorf("%w: %d of %d", ErrRange, pos, s.t.Len())
	}
	return charMetaOf(&ch), nil
}

// RangeMeta returns metadata for the visible range [pos, pos+n). The whole
// range resolves against this one snapshot: it can never mix characters
// from two different committed states.
func (s *DocSnapshot) RangeMeta(pos, n int) ([]CharMeta, error) {
	if pos < 0 || n < 0 || pos+n > s.t.Len() {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrRange, pos, pos+n, s.t.Len())
	}
	out := make([]CharMeta, 0, n)
	i := 0
	s.t.WalkVisible(func(ch *texttree.Char) bool {
		if i >= pos && i < pos+n {
			out = append(out, charMetaOf(ch))
		}
		i++
		return i < pos+n
	})
	if len(out) != n {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrRange, pos, pos+n, s.t.Len())
	}
	return out, nil
}

// Spans returns the document's active spans. Span rows live in the spans
// table rather than the character chain, so this reads the latest
// committed rows; anchors unknown to the snapshot (spans laid over text
// inserted after it) resolve to empty ranges in SpanRange.
func (s *DocSnapshot) Spans() ([]Span, error) { return s.d.Spans() }

// SpanRange resolves a span's visible position range [start, end) against
// this snapshot. Anchors may be tombstones: a tombstoned start contributes
// the position where its text would resume; a tombstoned end closes the
// range there. Anchors the snapshot has never seen contribute nothing.
func (s *DocSnapshot) SpanRange(sp Span) (start, end int) {
	if r, ok := s.t.RankOf(sp.Start); ok {
		start = r
	}
	if r, ok := s.t.PosOf(sp.End); ok {
		end = r + 1
	} else if r, ok := s.t.RankOf(sp.End); ok {
		end = r
	}
	if end < start {
		end = start
	}
	return start, end
}

// VersionText reconstructs the document text as of the named version, as
// seen by this snapshot.
func (s *DocSnapshot) VersionText(versionID util.ID) (string, error) {
	row, _, err := s.d.eng.tVersions.GetByPK(nil, int64(versionID))
	if errors.Is(err, db.ErrNotFound) {
		return "", ErrVersionNotFound
	}
	if err != nil {
		return "", err
	}
	if util.ID(row[1].(int64)) != s.d.id {
		return "", ErrVersionNotFound
	}
	// Version reconstruction may reach past the compaction horizon; load
	// the parked archive first so an I/O failure surfaces here instead of
	// silently reconstructing from the hot set alone.
	if _, err := s.d.ensureArchive(); err != nil {
		return "", err
	}
	return s.d.timeTravelTree(s.t).TextAt(row[4].(time.Time)), nil
}

// DiffVersions diffs two versions (older first) against this snapshot.
// Passing util.NilID as `to` diffs against the snapshot's text. Both sides
// reconstruct from the same view, so the diff is never torn by a write
// landing between the two reads.
func (s *DocSnapshot) DiffVersions(from, to util.ID) ([]Hunk, error) {
	fromText, err := s.VersionText(from)
	if err != nil {
		return nil, err
	}
	var toText string
	if to.IsNil() {
		toText = s.t.Text()
	} else {
		toText, err = s.VersionText(to)
		if err != nil {
			return nil, err
		}
	}
	return DiffTexts(fromText, toText), nil
}
