package core

import (
	"errors"
	"fmt"
	"time"

	"tendax/internal/awareness"
	"tendax/internal/db"
	"tendax/internal/texttree"
	"tendax/internal/txn"
	"tendax/internal/util"
	"tendax/internal/wal"
)

// ErrNothingToUndo reports an empty undo (or redo) history for the scope.
var ErrNothingToUndo = errors.New("core: nothing to undo")

// ErrNothingToRedo reports that no undone operation is available to redo.
var ErrNothingToRedo = errors.New("core: nothing to redo")

// opRecord mirrors one ops-table row in memory. The document keeps its
// operation log cached (the table remains the source of truth and the cache
// is rebuilt on open).
type opRecord struct {
	ID      util.ID
	User    string
	Kind    string
	CharIDs []util.ID
	Ref     util.ID
	Created time.Time
	Undone  bool
}

// opChunkBytes bounds the char-ID payload stored per row; longer lists
// spill into opchunks continuation rows.
const opChunkBytes = 128 * 8

// loadOps populates the in-memory operation log from the ops table,
// reassembling chunked ID payloads.
func (d *Document) loadOps() error {
	rids, err := d.eng.tOps.LookupEq("doc", int64(d.id))
	if err != nil {
		return err
	}
	d.ops = d.ops[:0]
	for _, rid := range rids {
		row, err := d.eng.tOps.Get(nil, rid)
		if err != nil {
			return err
		}
		op := opFromRow(row)
		if len(row[4].([]byte)) >= opChunkBytes {
			more, err := d.loadOpChunks(op.ID)
			if err != nil {
				return err
			}
			op.CharIDs = append(op.CharIDs, more...)
		}
		d.ops = append(d.ops, op)
	}
	// LookupEq returns RID order; ops were appended over time but RID order
	// within one doc can interleave with other docs' pages, so sort by ID
	// (IDs are allocation-ordered).
	for i := 1; i < len(d.ops); i++ {
		for j := i; j > 0 && d.ops[j].ID < d.ops[j-1].ID; j-- {
			d.ops[j], d.ops[j-1] = d.ops[j-1], d.ops[j]
		}
	}
	return nil
}

// loadOpChunks returns the continuation char IDs of one op, in order.
func (d *Document) loadOpChunks(opID util.ID) ([]util.ID, error) {
	rids, err := d.eng.tOpChunks.LookupEq("op", int64(opID))
	if err != nil {
		return nil, err
	}
	type chunk struct {
		seq int64
		ids []util.ID
	}
	chunks := make([]chunk, 0, len(rids))
	for _, rid := range rids {
		row, err := d.eng.tOpChunks.Get(nil, rid)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, chunk{row[2].(int64), decodeIDs(row[3].([]byte))})
	}
	for i := 1; i < len(chunks); i++ {
		for j := i; j > 0 && chunks[j].seq < chunks[j-1].seq; j-- {
			chunks[j], chunks[j-1] = chunks[j-1], chunks[j]
		}
	}
	var out []util.ID
	for _, c := range chunks {
		out = append(out, c.ids...)
	}
	return out, nil
}

// writeOpRow persists one operation record inside tx, spilling long char-ID
// lists into continuation rows so no row outgrows a page.
func (d *Document) writeOpRow(tx *txn.Txn, op *opRecord) error {
	payload := encodeIDs(op.CharIDs)
	first := payload
	var rest []byte
	if len(payload) > opChunkBytes {
		first = payload[:opChunkBytes]
		rest = payload[opChunkBytes:]
	}
	if _, err := d.eng.tOps.Insert(tx, db.Row{
		int64(op.ID), int64(d.id), op.User, op.Kind, first,
		int64(op.Ref), op.Created, op.Undone,
	}); err != nil {
		return err
	}
	for seq := int64(1); len(rest) > 0; seq++ {
		chunk := rest
		if len(chunk) > opChunkBytes {
			chunk = chunk[:opChunkBytes]
		}
		rest = rest[len(chunk):]
		cid := d.eng.ids.Next()
		if _, err := d.eng.tOpChunks.Insert(tx, db.Row{
			int64(cid), int64(op.ID), seq, chunk,
		}); err != nil {
			return err
		}
	}
	return nil
}

// setOpUndone flips the undone flag on a persisted op row, leaving the
// (possibly chunk-prefixed) payload untouched.
func (d *Document) setOpUndone(tx *txn.Txn, opID util.ID, undone bool) error {
	row, _, err := d.eng.tOps.GetByPK(tx, int64(opID))
	if err != nil {
		return err
	}
	row[7] = undone
	return d.eng.tOps.UpdateByPK(tx, int64(opID), row)
}

func opFromRow(row db.Row) opRecord {
	return opRecord{
		ID:      util.ID(row[0].(int64)),
		User:    row[2].(string),
		Kind:    row[3].(string),
		CharIDs: decodeIDs(row[4].([]byte)),
		Ref:     util.ID(row[5].(int64)),
		Created: row[6].(time.Time),
		Undone:  row[7].(bool),
	}
}

// undoable reports whether an operation kind participates in undo history.
func undoable(kind string) bool {
	switch kind {
	case "insert", "paste", "delete", "note", "layout", "layout-remove":
		return true
	}
	return false
}

// History returns the document's operation log (most recent last). Undo and
// redo operations appear as their own entries — the paper's metadata
// gathering keeps the full editing history queryable.
func (d *Document) History() []OpInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]OpInfo, len(d.ops))
	for i, op := range d.ops {
		out[i] = OpInfo{
			ID: op.ID, User: op.User, Kind: op.Kind, Chars: len(op.CharIDs),
			Ref: op.Ref, Created: op.Created, Undone: op.Undone,
		}
	}
	return out
}

// OpInfo is one entry of the editing history.
type OpInfo struct {
	ID      util.ID
	User    string
	Kind    string
	Chars   int
	Ref     util.ID
	Created time.Time
	Undone  bool
}

// UndoLocal undoes user's most recent not-yet-undone operation, even if
// other users edited afterwards (selective undo). Returns the undo
// operation's ID.
func (d *Document) UndoLocal(user string) (util.ID, error) {
	return d.undo(user, true)
}

// UndoGlobal undoes the document's most recent operation regardless of
// author, on behalf of user.
func (d *Document) UndoGlobal(user string) (util.ID, error) {
	return d.undo(user, false)
}

// RedoLocal redoes user's most recently undone operation.
func (d *Document) RedoLocal(user string) (util.ID, error) {
	return d.redo(user, true)
}

// RedoGlobal redoes the document's most recently undone operation.
func (d *Document) RedoGlobal(user string) (util.ID, error) {
	return d.redo(user, false)
}

func (d *Document) undo(user string, local bool) (util.ID, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return util.NilID, err
	}
	undoID, lsn, err := d.undoAsync(user, local)
	if err != nil {
		return util.NilID, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return util.NilID, err
	}
	return undoID, nil
}

// undoAsync does undo's locked work with an asynchronous commit; the
// durability wait is the caller's, outside d.mu (group-commit rule).
func (d *Document) undoAsync(user string, local bool) (util.ID, wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	var target *opRecord
	for i := len(d.ops) - 1; i >= 0; i-- {
		op := &d.ops[i]
		if !undoable(op.Kind) || op.Undone {
			continue
		}
		if local && op.User != user {
			continue
		}
		target = op
		break
	}
	if target == nil {
		return util.NilID, 0, ErrNothingToUndo
	}
	now := d.eng.clock.Now()
	undoID := d.eng.ids.Next()

	plan, err := d.inversePlan(target, user, now)
	if err != nil {
		return util.NilID, 0, err
	}
	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		if err := plan.persist(tx); err != nil {
			return err
		}
		if err := d.setOpUndone(tx, target.ID, true); err != nil {
			return err
		}
		undoOp := opRecord{ID: undoID, User: user, Kind: "undo", CharIDs: plan.affected,
			Ref: target.ID, Created: now}
		if err := d.writeOpRow(tx, &undoOp); err != nil {
			return err
		}
		return d.updateDocRowLocked(tx, user, now, d.buf.Len()+plan.sizeDelta)
	})
	if err != nil {
		return util.NilID, 0, err
	}
	plan.apply()
	target.Undone = true
	d.ops = append(d.ops, opRecord{ID: undoID, User: user, Kind: "undo",
		CharIDs: plan.affected, Ref: target.ID, Created: now})
	d.noteAuthorLocked(user, now)
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvUndo, User: user, OpID: undoID,
		Name: target.Kind, N: len(target.CharIDs), At: now,
	})
	return undoID, lsn, nil
}

func (d *Document) redo(user string, local bool) (util.ID, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return util.NilID, err
	}
	redoID, lsn, err := d.redoAsync(user, local)
	if err != nil {
		return util.NilID, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return util.NilID, err
	}
	return redoID, nil
}

// redoAsync does redo's locked work with an asynchronous commit; the
// durability wait is the caller's, outside d.mu (group-commit rule).
func (d *Document) redoAsync(user string, local bool) (util.ID, wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	// Find the most recent unconsumed undo (scoped to user for local).
	var undoOp *opRecord
	for i := len(d.ops) - 1; i >= 0; i-- {
		op := &d.ops[i]
		if op.Kind != "undo" || op.Undone {
			continue
		}
		if local && op.User != user {
			continue
		}
		undoOp = op
		break
	}
	if undoOp == nil {
		return util.NilID, 0, ErrNothingToRedo
	}
	var target *opRecord
	for i := range d.ops {
		if d.ops[i].ID == undoOp.Ref {
			target = &d.ops[i]
			break
		}
	}
	if target == nil {
		return util.NilID, 0, ErrNothingToRedo
	}
	now := d.eng.clock.Now()
	redoID := d.eng.ids.Next()

	// Redo reverts exactly the set the undo flipped (recorded on the undo
	// op), not the target's full list — characters hidden by other users'
	// operations stay hidden.
	plan, err := d.reapplyPlan(target, undoOp.CharIDs, user, now)
	if err != nil {
		return util.NilID, 0, err
	}
	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		if err := plan.persist(tx); err != nil {
			return err
		}
		if err := d.setOpUndone(tx, target.ID, false); err != nil {
			return err
		}
		if err := d.setOpUndone(tx, undoOp.ID, true); err != nil {
			return err
		}
		redoOp := opRecord{ID: redoID, User: user, Kind: "redo", CharIDs: target.CharIDs,
			Ref: target.ID, Created: now}
		if err := d.writeOpRow(tx, &redoOp); err != nil {
			return err
		}
		return d.updateDocRowLocked(tx, user, now, d.buf.Len()+plan.sizeDelta)
	})
	if err != nil {
		return util.NilID, 0, err
	}
	plan.apply()
	target.Undone = false
	undoOp.Undone = true
	d.ops = append(d.ops, opRecord{ID: redoID, User: user, Kind: "redo",
		CharIDs: target.CharIDs, Ref: target.ID, Created: now})
	d.noteAuthorLocked(user, now)
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvRedo, User: user, OpID: redoID,
		Name: target.Kind, N: len(target.CharIDs), At: now,
	})
	return redoID, lsn, nil
}

// undoPlan captures the row updates and buffer mutations of an undo/redo,
// so persistence happens inside the transaction and the buffer is touched
// only after commit. affected lists the characters the plan actually flips
// — the undo operation records it so a later redo reverts exactly this set
// and nothing more (characters hidden by other users' deletes stay hidden).
type undoPlan struct {
	persist   func(tx *txn.Txn) error
	apply     func()
	sizeDelta int
	affected  []util.ID
}

// inversePlan builds the inverse of op: hide inserted chars, restore
// deleted ones, or flip a span's removed flag.
func (d *Document) inversePlan(op *opRecord, user string, now time.Time) (*undoPlan, error) {
	switch op.Kind {
	case "insert", "paste", "note":
		return d.visibilityPlanLocked(op.CharIDs, false, user, now)
	case "delete":
		return d.visibilityPlanLocked(op.CharIDs, true, user, now)
	case "layout":
		return d.spanRemovedPlan(op.Ref, true)
	case "layout-remove":
		return d.spanRemovedPlan(op.Ref, false)
	}
	return nil, ErrNothingToUndo
}

// reapplyPlan rebuilds the original effect of op (for redo) over the given
// character set (the subset the corresponding undo actually flipped).
func (d *Document) reapplyPlan(op *opRecord, ids []util.ID, user string, now time.Time) (*undoPlan, error) {
	switch op.Kind {
	case "insert", "paste", "note":
		return d.visibilityPlanLocked(ids, true, user, now)
	case "delete":
		return d.visibilityPlanLocked(ids, false, user, now)
	case "layout":
		return d.spanRemovedPlan(op.Ref, false)
	case "layout-remove":
		return d.spanRemovedPlan(op.Ref, true)
	}
	return nil, ErrNothingToRedo
}

// visibilityPlanLocked (d.mu held) makes the given characters visible or hidden. Characters
// already in the desired state (e.g. re-deleted by another user since) are
// skipped — selective undo over tombstones commutes per character. An
// undelete of a character whose tombstone was archived by compaction first
// rehydrates it: the instance re-enters the chars table and the hot chain
// at its anchor, its run splits around it, and only then does visibility
// flip — all inside the one undo transaction.
func (d *Document) visibilityPlanLocked(ids []util.ID, visible bool, user string, now time.Time) (*undoPlan, error) {
	var affected []util.ID // hot instances whose visibility flips
	var archived []util.ID // archived tombstones to rehydrate, then flip
	// Undo may reach archived tombstones; the lazily parked archive must
	// be resident before the hot-or-archived triage below.
	if _, err := d.ensureArchiveLocked(); err != nil {
		return nil, err
	}
	arch := d.buf.Archive()
	for _, id := range ids {
		if ch, ok := d.buf.Char(id); ok {
			if ch.Deleted == !visible {
				continue // already in desired state
			}
			affected = append(affected, id)
			continue
		}
		if arch.Contains(id) {
			// Archived instances are tombstones by construction: only an
			// undelete needs them back; a re-hide finds them hidden already.
			if visible {
				archived = append(archived, id)
			}
			continue
		}
		// Unknown everywhere: dropped by an external cleanup; skip.
	}
	var rplan *texttree.RehydratePlan
	if len(archived) > 0 {
		var err error
		if rplan, err = d.buf.PlanRehydrate(archived); err != nil {
			return nil, err
		}
	}

	// flip returns ch with its visibility switched, recording (or ending)
	// the deletion interval so time travel still sees the gap.
	flip := func(ch texttree.Char) texttree.Char {
		if visible {
			ch.Deleted = false
			ch.Restored = now
		} else {
			ch.Deleted = true
			ch.DeletedBy = user
			ch.DeletedAt = now
			ch.Restored = time.Time{}
		}
		return ch
	}

	delta := len(affected) + len(archived)
	if !visible {
		delta = -delta
	}
	all := append(append([]util.ID(nil), affected...), archived...)
	return &undoPlan{
		sizeDelta: delta,
		affected:  all,
		persist: func(tx *txn.Txn) error {
			// Final row state per instance: link rewrites from rehydration
			// first, then visibility flips, so an instance touched by both
			// is written once with both effects.
			final := make(map[util.ID]texttree.Char)
			inserted := make(map[util.ID]bool)
			if rplan != nil {
				for _, step := range rplan.Steps {
					final[step.Ch.ID] = flip(step.Ch)
					inserted[step.Ch.ID] = true
				}
				for id, upd := range rplan.LinkUpdates {
					final[id] = *upd
				}
			}
			for _, id := range affected {
				ch, ok := final[id]
				if !ok {
					c, _ := d.buf.Char(id)
					ch = *c
				}
				final[id] = flip(ch)
			}
			for id, ch := range final {
				row := d.rowFromChar(&ch)
				if inserted[id] {
					if _, err := d.eng.tChars.Insert(tx, row); err != nil {
						return err
					}
				} else if err := d.eng.tChars.UpdateByPK(tx, int64(id), row); err != nil {
					return err
				}
			}
			if rplan != nil {
				for anchor, run := range rplan.RunUpdates {
					if err := d.deleteArchiveRows(tx, anchor); err != nil {
						return err
					}
					if len(run) > 0 {
						if err := d.insertArchiveRows(tx, anchor, run); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
		apply: func() {
			if rplan != nil {
				if err := d.buf.ApplyRehydrate(rplan); err != nil {
					// The transaction already committed the rehydrated
					// rows; a failure here means the plan went stale under
					// the document lock, which cannot happen. Surface it
					// loudly rather than diverge silently.
					panic(fmt.Sprintf("core: rehydrate after commit: %v", err))
				}
			}
			for _, id := range all {
				if visible {
					d.buf.Undelete(id, now)
				} else {
					d.buf.Delete(id, user, now)
				}
			}
		},
	}, nil
}

// spanRemovedPlan flips a span's removed flag.
func (d *Document) spanRemovedPlan(spanID util.ID, removed bool) (*undoPlan, error) {
	row, _, err := d.eng.tSpans.GetByPK(nil, int64(spanID))
	if err != nil {
		return nil, err
	}
	return &undoPlan{
		persist: func(tx *txn.Txn) error {
			cur, _, err := d.eng.tSpans.GetByPK(tx, int64(spanID))
			if err != nil {
				return err
			}
			cur[8] = removed
			return d.eng.tSpans.UpdateByPK(tx, int64(spanID), cur)
		},
		apply: func() { _ = row },
	}, nil
}
