package core

import (
	"testing"
)

// TestQuickstartSequence replays the quickstart example's exact operation
// order, which once exposed a page-full error on version creation.
func TestQuickstartSequence(t *testing.T) {
	e := newEngine(t)
	doc, err := e.CreateDocument("alice", "quickstart")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.InsertText("alice", 0, "TeNDaX stores text natively in a database."); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.InsertText("bob", 7, "— a Text Native Database eXtension — "); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.CharMetaAt(8); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.ApplyLayout("alice", 0, 6, SpanBold, "true"); err != nil {
		t.Fatal(err)
	}
	v1, err := doc.CreateVersion("alice", "v1")
	if err != nil {
		t.Fatalf("CreateVersion: %v", err)
	}
	if _, err := doc.DeleteRange("alice", 0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.VersionText(v1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.UndoLocal("alice"); err != nil {
		t.Fatal(err)
	}
}
