package core

import (
	"fmt"
	"strings"

	"tendax/internal/util"
)

// DiffKind labels one diff hunk.
type DiffKind int

// Diff hunk kinds.
const (
	DiffKeep DiffKind = iota
	DiffAdd
	DiffDelete
)

func (k DiffKind) String() string {
	switch k {
	case DiffKeep:
		return " "
	case DiffAdd:
		return "+"
	case DiffDelete:
		return "-"
	default:
		return "?"
	}
}

// Hunk is one run of identical-kind lines in a diff.
type Hunk struct {
	Kind  DiffKind
	Lines []string
}

// DiffTexts computes a line-based diff from a to b (longest common
// subsequence), used to compare document versions.
func DiffTexts(a, b string) []Hunk {
	al := splitLines(a)
	bl := splitLines(b)
	// LCS table.
	n, m := len(al), len(bl)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var hunks []Hunk
	push := func(kind DiffKind, line string) {
		if len(hunks) > 0 && hunks[len(hunks)-1].Kind == kind {
			hunks[len(hunks)-1].Lines = append(hunks[len(hunks)-1].Lines, line)
			return
		}
		hunks = append(hunks, Hunk{Kind: kind, Lines: []string{line}})
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case al[i] == bl[j]:
			push(DiffKeep, al[i])
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			push(DiffDelete, al[i])
			i++
		default:
			push(DiffAdd, bl[j])
			j++
		}
	}
	for ; i < n; i++ {
		push(DiffDelete, al[i])
	}
	for ; j < m; j++ {
		push(DiffAdd, bl[j])
	}
	return hunks
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// FormatDiff renders hunks in unified-ish form.
func FormatDiff(hunks []Hunk) string {
	var sb strings.Builder
	for _, h := range hunks {
		for _, line := range h.Lines {
			fmt.Fprintf(&sb, "%s %s\n", h.Kind, line)
		}
	}
	return sb.String()
}

// DiffVersions diffs two versions of the document (older first). Passing
// util.NilID as `to` diffs against the current text, so
// DiffVersions(v, util.NilID) shows what changed since version v. Both
// sides reconstruct from one committed snapshot (the seed version read
// each side under a separate lock acquisition, so an edit landing between
// them produced a diff of two states that never coexisted).
func (d *Document) DiffVersions(from, to util.ID) ([]Hunk, error) {
	return d.Snapshot().DiffVersions(from, to)
}
