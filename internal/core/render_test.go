package core

import (
	"testing"
)

func TestRenderMarkupBasics(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "styled")
	d.InsertText("alice", 0, "Title and body text")
	d.SetHeading("alice", 0, 5, 1)
	d.ApplyLayout("bob", 10, 4, SpanBold, "true")

	got, err := d.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	want := "<heading=1>Title</heading> and <bold>body</bold> text"
	if got != want {
		t.Fatalf("markup:\n got %q\nwant %q", got, want)
	}
}

func TestRenderMarkupSurvivesConcurrentEdits(t *testing.T) {
	// Spans anchor to character identities: inserting text before and
	// inside a span stretches or shifts it naturally.
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "anchored")
	d.InsertText("alice", 0, "bold")
	d.ApplyLayout("alice", 0, 4, SpanBold, "true")
	d.InsertText("bob", 0, ">> ")  // before the span
	d.InsertText("carol", 5, "--") // inside the span (after 'b','o' -> pos 5 = after "bo")

	got, err := d.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	want := ">> <bold>bo--ld</bold>"
	if got != want {
		t.Fatalf("markup after edits:\n got %q\nwant %q", got, want)
	}
}

func TestRenderMarkupNotes(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "noted")
	d.InsertText("alice", 0, "check this")
	d.InsertNote("bob", 6, "verify!")
	got, err := d.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	want := "check [note(bob): verify!]this"
	if got != want {
		t.Fatalf("markup with note:\n got %q\nwant %q", got, want)
	}
}

func TestOutline(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "structured")
	d.InsertText("alice", 0, "Intro\nbody one\nMethods\nbody two\nResults\n")
	d.SetHeading("alice", 0, 5, 1)  // Intro
	d.SetHeading("alice", 15, 7, 2) // Methods
	d.SetHeading("alice", 32, 7, 1) // Results

	outline, err := d.Outline()
	if err != nil {
		t.Fatal(err)
	}
	if len(outline) != 3 {
		t.Fatalf("outline = %+v", outline)
	}
	if outline[0].Text != "Intro" || outline[0].Level != 1 {
		t.Fatalf("outline[0] = %+v", outline[0])
	}
	if outline[1].Text != "Methods" || outline[1].Level != 2 {
		t.Fatalf("outline[1] = %+v", outline[1])
	}
	if outline[2].Text != "Results" {
		t.Fatalf("outline[2] = %+v", outline[2])
	}
	// Outline reflects edits: insert a prefix; positions shift but text
	// content of headings is stable.
	d.InsertText("bob", 0, "PREFACE\n")
	outline2, _ := d.Outline()
	if outline2[0].Text != "Intro" || outline2[0].Pos != 8 {
		t.Fatalf("outline after prefix = %+v", outline2[0])
	}
}

func TestOutlineEmptyAndUnheaded(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "plain")
	outline, err := d.Outline()
	if err != nil || len(outline) != 0 {
		t.Fatalf("outline of empty doc = %v, %v", outline, err)
	}
	d.InsertText("alice", 0, "no headings here")
	outline, _ = d.Outline()
	if len(outline) != 0 {
		t.Fatalf("outline = %v", outline)
	}
}
