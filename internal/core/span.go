package core

import (
	"fmt"
	"sort"
	"time"

	"tendax/internal/awareness"
	"tendax/internal/db"
	"tendax/internal/txn"
	"tendax/internal/util"
	"tendax/internal/wal"
)

// Span is a layout, structure or note annotation anchored to character
// instances. Because anchors are character identities rather than offsets,
// spans survive concurrent edits without adjustment — the TeNDaX approach
// to collaborative layouting.
type Span struct {
	ID      util.ID
	Kind    string // bold, italic, heading, paragraph-style, note, …
	Value   string // e.g. heading level, font, or the note text
	Start   util.ID
	End     util.ID
	Author  string
	Created time.Time
	Removed bool
}

// Standard span kinds.
const (
	SpanBold    = "bold"
	SpanItalic  = "italic"
	SpanFont    = "font"
	SpanHeading = "heading"
	SpanStyle   = "style"
	SpanNote    = "note"
)

// ApplyLayout annotates the visible range [pos, pos+n) with a layout or
// structure span, as one transaction. Returns the new span's ID.
func (d *Document) ApplyLayout(user string, pos, n int, kind, value string) (util.ID, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return util.NilID, err
	}
	if n <= 0 {
		return util.NilID, fmt.Errorf("core: layout over %d chars", n)
	}
	spanID, lsn, err := d.applyLayoutAsync(user, pos, n, kind, value)
	if err != nil {
		return util.NilID, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return util.NilID, err
	}
	return spanID, nil
}

// applyLayoutAsync does ApplyLayout's locked work with an asynchronous
// commit; the durability wait is the caller's, outside d.mu (group-commit
// rule).
func (d *Document) applyLayoutAsync(user string, pos, n int, kind, value string) (util.ID, wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := d.buf.RangeIDs(pos, n)
	if len(ids) != n {
		return util.NilID, 0, fmt.Errorf("%w: layout [%d,%d) of %d", ErrRange, pos, pos+n, d.buf.Len())
	}
	spanID := d.eng.ids.Next()
	opID := d.eng.ids.Next()
	now := d.eng.clock.Now()
	start, end := ids[0], ids[len(ids)-1]

	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		if _, err := d.eng.tSpans.Insert(tx, db.Row{
			int64(spanID), int64(d.id), kind, value, int64(start), int64(end),
			user, now, false,
		}); err != nil {
			return err
		}
		if _, err := d.eng.tOps.Insert(tx, db.Row{
			int64(opID), int64(d.id), user, "layout", []byte{}, int64(spanID), now, false,
		}); err != nil {
			return err
		}
		return d.updateDocRowLocked(tx, user, now, d.buf.Len())
	})
	if err != nil {
		return util.NilID, 0, err
	}
	d.ops = append(d.ops, opRecord{ID: opID, User: user, Kind: "layout", Ref: spanID, Created: now})
	d.noteAuthorLocked(user, now)
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvLayout, User: user, OpID: opID,
		Pos: pos, N: n, Name: kind + "=" + value, At: now,
	})
	return spanID, lsn, nil
}

// SetHeading marks [pos, pos+n) as a heading of the given level (structure
// definition in the paper's terms).
func (d *Document) SetHeading(user string, pos, n, level int) (util.ID, error) {
	return d.ApplyLayout(user, pos, n, SpanHeading, fmt.Sprintf("%d", level))
}

// InsertNote attaches a note to the visible character at pos.
func (d *Document) InsertNote(user string, pos int, text string) (util.ID, error) {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return util.NilID, err
	}
	spanID, lsn, err := d.insertNoteAsync(user, pos, text)
	if err != nil {
		return util.NilID, err
	}
	if err := d.eng.WaitDurable(lsn); err != nil {
		return util.NilID, err
	}
	return spanID, nil
}

// insertNoteAsync does InsertNote's locked work with an asynchronous
// commit; the durability wait is the caller's, outside d.mu (group-commit
// rule).
func (d *Document) insertNoteAsync(user string, pos int, text string) (util.ID, wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	anchor, ok := d.buf.IDAt(pos)
	if !ok {
		return util.NilID, 0, fmt.Errorf("%w: note at %d of %d", ErrRange, pos, d.buf.Len())
	}
	spanID := d.eng.ids.Next()
	opID := d.eng.ids.Next()
	now := d.eng.clock.Now()
	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		if _, err := d.eng.tSpans.Insert(tx, db.Row{
			int64(spanID), int64(d.id), SpanNote, text, int64(anchor), int64(anchor),
			user, now, false,
		}); err != nil {
			return err
		}
		if _, err := d.eng.tOps.Insert(tx, db.Row{
			int64(opID), int64(d.id), user, "layout", []byte{}, int64(spanID), now, false,
		}); err != nil {
			return err
		}
		return d.updateDocRowLocked(tx, user, now, d.buf.Len())
	})
	if err != nil {
		return util.NilID, 0, err
	}
	d.ops = append(d.ops, opRecord{ID: opID, User: user, Kind: "layout", Ref: spanID, Created: now})
	d.noteAuthorLocked(user, now)
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvNote, User: user, OpID: opID,
		Pos: pos, Text: text, At: now,
	})
	return spanID, lsn, nil
}

// RemoveSpan retracts a span (layout removal), as one transaction.
func (d *Document) RemoveSpan(user string, spanID util.ID) error {
	if err := d.eng.allowed(user, d.id, RWrite); err != nil {
		return err
	}
	lsn, err := d.removeSpanAsync(user, spanID)
	if err != nil {
		return err
	}
	return d.eng.WaitDurable(lsn)
}

// removeSpanAsync does RemoveSpan's locked work with an asynchronous
// commit; the durability wait is the caller's, outside d.mu (group-commit
// rule).
func (d *Document) removeSpanAsync(user string, spanID util.ID) (wal.LSN, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	opID := d.eng.ids.Next()
	now := d.eng.clock.Now()
	lsn, err := d.eng.withTxnAsync(func(tx *txn.Txn) error {
		row, _, err := d.eng.tSpans.GetByPK(tx, int64(spanID))
		if err != nil {
			return err
		}
		if util.ID(row[1].(int64)) != d.id {
			return fmt.Errorf("core: span %v belongs to another document", spanID)
		}
		row[8] = true
		if err := d.eng.tSpans.UpdateByPK(tx, int64(spanID), row); err != nil {
			return err
		}
		if _, err := d.eng.tOps.Insert(tx, db.Row{
			int64(opID), int64(d.id), user, "layout-remove", []byte{}, int64(spanID), now, false,
		}); err != nil {
			return err
		}
		return d.updateDocRowLocked(tx, user, now, d.buf.Len())
	})
	if err != nil {
		return 0, err
	}
	d.ops = append(d.ops, opRecord{ID: opID, User: user, Kind: "layout-remove", Ref: spanID, Created: now})
	d.noteAuthorLocked(user, now)
	d.publishEventLocked(awareness.Event{
		Doc: d.id, Kind: awareness.EvLayout, User: user, OpID: opID,
		Name: "remove", At: now,
	})
	return lsn, nil
}

// Spans returns the document's active (non-removed) spans, oldest first.
func (d *Document) Spans() ([]Span, error) {
	rids, err := d.eng.tSpans.LookupEq("doc", int64(d.id))
	if err != nil {
		return nil, err
	}
	var out []Span
	for _, rid := range rids {
		row, err := d.eng.tSpans.Get(nil, rid)
		if err != nil {
			continue
		}
		if row[8].(bool) {
			continue
		}
		out = append(out, spanFromRow(row))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func spanFromRow(row db.Row) Span {
	return Span{
		ID:      util.ID(row[0].(int64)),
		Kind:    row[2].(string),
		Value:   row[3].(string),
		Start:   util.ID(row[4].(int64)),
		End:     util.ID(row[5].(int64)),
		Author:  row[6].(string),
		Created: row[7].(time.Time),
		Removed: row[8].(bool),
	}
}

// SpanRange resolves a span's current visible position range [start, end)
// against the latest committed snapshot, without taking the document lock.
// Anchors may be tombstones: a tombstoned start contributes the position
// where its text would resume; a tombstoned end closes the range there.
func (d *Document) SpanRange(s Span) (start, end int) {
	return d.Snapshot().SpanRange(s)
}
