package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tendax/internal/awareness"
	"tendax/internal/db"
	"tendax/internal/storage"
	"tendax/internal/util"
	"tendax/internal/wal"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	database, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { database.Close() })
	clock := util.NewFakeClock(time.Unix(1_000_000, 0).UTC(), time.Millisecond)
	e, err := NewEngine(database, clock)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCreateAndEditDocument(t *testing.T) {
	e := newEngine(t)
	d, err := e.CreateDocument("alice", "report")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertText("alice", 0, "hello world"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "hello world" {
		t.Fatalf("Text = %q", d.Text())
	}
	if _, err := d.InsertText("bob", 5, ","); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "hello, world" {
		t.Fatalf("Text = %q", d.Text())
	}
	if _, err := d.DeleteRange("alice", 0, 6); err != nil {
		t.Fatal(err)
	}
	if d.Text() != " world" {
		t.Fatalf("Text = %q", d.Text())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	info := d.Info()
	if info.Size != 6 || info.LastAuthor != "alice" {
		t.Fatalf("Info = %+v", info)
	}
	if len(info.Authors) != 2 {
		t.Fatalf("Authors = %v", info.Authors)
	}
}

func TestInsertPositionValidation(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "doc")
	if _, err := d.InsertText("alice", 5, "x"); !errors.Is(err, ErrRange) {
		t.Fatalf("err = %v, want ErrRange", err)
	}
	if _, err := d.DeleteRange("alice", 0, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("delete on empty doc: %v, want ErrRange", err)
	}
	if _, err := d.InsertText("alice", 0, ""); err == nil {
		t.Fatal("empty insert accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	database, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clock := util.NewFakeClock(time.Unix(1_000_000, 0).UTC(), time.Millisecond)
	e, err := NewEngine(database, clock)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := e.CreateDocument("alice", "persist")
	d.InsertText("alice", 0, "abcdef")
	d.DeleteRange("alice", 1, 2) // "adef"
	d.InsertText("bob", 2, "XY") // "adXYef"
	docID := d.ID()

	// Second engine over the same database simulates process restart
	// (the docs cache is cold; buffers rebuild from the chars table).
	e2, err := NewEngine(database, clock)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e2.OpenDocument(docID)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Text() != "adXYef" {
		t.Fatalf("reloaded text = %q, want adXYef", d2.Text())
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	database.Close()
}

func TestCrashRecoveryRestoresDocument(t *testing.T) {
	disk := storage.NewMemDisk()
	store := wal.NewMemStore()
	database, err := db.OpenWith(disk, store, db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clock := util.NewFakeClock(time.Unix(1_000_000, 0).UTC(), time.Millisecond)
	e, _ := NewEngine(database, clock)
	d, _ := e.CreateDocument("alice", "crashdoc")
	d.InsertText("alice", 0, "survives the crash")
	docID := d.ID()
	// Crash: flush pages (log is already flushed per commit), drop
	// everything, reopen from the raw disk + log.
	database.Pool().FlushAll()

	db2, err := db.OpenWith(disk, store, db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(db2, clock)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e2.OpenDocument(docID)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Text() != "survives the crash" {
		t.Fatalf("text after crash = %q", d2.Text())
	}
}

func TestUndoRedoLocal(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "undoable")
	d.InsertText("alice", 0, "base ")
	d.InsertText("alice", 5, "more")
	if d.Text() != "base more" {
		t.Fatalf("Text = %q", d.Text())
	}
	if _, err := d.UndoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "base " {
		t.Fatalf("after undo: %q", d.Text())
	}
	if _, err := d.RedoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "base more" {
		t.Fatalf("after redo: %q", d.Text())
	}
	// Undo delete restores.
	d.DeleteRange("alice", 0, 5)
	if d.Text() != "more" {
		t.Fatalf("after delete: %q", d.Text())
	}
	if _, err := d.UndoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "base more" {
		t.Fatalf("after undo of delete: %q", d.Text())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUndoLocalIsSelective(t *testing.T) {
	// Local undo reverts the caller's latest op even when another user
	// edited afterwards — the paper's "local undo".
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "selective")
	d.InsertText("alice", 0, "AAA")
	d.InsertText("bob", 3, "BBB")
	if _, err := d.UndoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "BBB" {
		t.Fatalf("after alice's local undo: %q, want BBB", d.Text())
	}
	if _, err := d.UndoLocal("bob"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "" {
		t.Fatalf("after bob's local undo: %q, want empty", d.Text())
	}
	if _, err := d.RedoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "AAA" {
		t.Fatalf("after alice's redo: %q, want AAA", d.Text())
	}
}

func TestUndoGlobal(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "global")
	d.InsertText("alice", 0, "one ")
	d.InsertText("bob", 4, "two")
	// Global undo by alice undoes bob's op (the most recent).
	if _, err := d.UndoGlobal("alice"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "one " {
		t.Fatalf("after global undo: %q", d.Text())
	}
	if _, err := d.RedoGlobal("carol"); err != nil {
		t.Fatal(err)
	}
	if d.Text() != "one two" {
		t.Fatalf("after global redo: %q", d.Text())
	}
}

func TestUndoNothing(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "empty")
	if _, err := d.UndoLocal("alice"); !errors.Is(err, ErrNothingToUndo) {
		t.Fatalf("err = %v, want ErrNothingToUndo", err)
	}
	if _, err := d.RedoLocal("alice"); !errors.Is(err, ErrNothingToRedo) {
		t.Fatalf("err = %v, want ErrNothingToRedo", err)
	}
}

func TestUndoStackDepth(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "deep")
	for i := 0; i < 10; i++ {
		d.InsertText("alice", d.Len(), fmt.Sprintf("%d", i))
	}
	for i := 0; i < 10; i++ {
		if _, err := d.UndoLocal("alice"); err != nil {
			t.Fatalf("undo %d: %v", i, err)
		}
	}
	if d.Text() != "" {
		t.Fatalf("after 10 undos: %q", d.Text())
	}
	for i := 0; i < 10; i++ {
		if _, err := d.RedoLocal("alice"); err != nil {
			t.Fatalf("redo %d: %v", i, err)
		}
	}
	if d.Text() != "0123456789" {
		t.Fatalf("after 10 redos: %q", d.Text())
	}
}

func TestCopyPasteProvenance(t *testing.T) {
	e := newEngine(t)
	src, _ := e.CreateDocument("alice", "source")
	src.InsertText("alice", 0, "copy this text")
	clip, err := src.Copy("bob", 5, 4) // "this"
	if err != nil {
		t.Fatal(err)
	}
	if clip.Text != "this" {
		t.Fatalf("clip = %q", clip.Text)
	}
	dst, _ := e.CreateDocument("bob", "target")
	dst.InsertText("bob", 0, "[]")
	if _, err := dst.Paste("bob", 1, clip); err != nil {
		t.Fatal(err)
	}
	if dst.Text() != "[this]" {
		t.Fatalf("dst = %q", dst.Text())
	}
	// Character-level provenance points back at the source chars.
	metas, err := dst.RangeMeta(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range metas {
		if m.SourceDoc != src.ID() {
			t.Fatalf("char %d srcdoc = %v, want %v", i, m.SourceDoc, src.ID())
		}
		if m.SourceChar != clip.SrcChars[i] {
			t.Fatalf("char %d srcchar = %v, want %v", i, m.SourceChar, clip.SrcChars[i])
		}
	}
	// Plain typed text has no provenance.
	m, _ := dst.CharMetaAt(0)
	if m.SourceDoc != util.NilID {
		t.Fatal("typed char has provenance")
	}
}

func TestPasteFromExternalSource(t *testing.T) {
	e := newEngine(t)
	ext, err := e.CreateExternalSource("https://example.org/spec")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := e.CreateDocument("alice", "notes")
	if _, err := d.Paste("alice", 0, Clipboard{Text: "quoted", SrcDoc: ext}); err != nil {
		t.Fatal(err)
	}
	m, _ := d.CharMetaAt(0)
	if m.SourceDoc != ext {
		t.Fatalf("external provenance lost: %v", m.SourceDoc)
	}
	exts, err := e.ExternalSources()
	if err != nil || len(exts) != 1 || exts[0].Name != "https://example.org/spec" {
		t.Fatalf("ExternalSources = %v, %v", exts, err)
	}
}

func TestLayoutSpans(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "styled")
	d.InsertText("alice", 0, "Heading then body text")
	spanID, err := d.ApplyLayout("alice", 0, 7, SpanBold, "true")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetHeading("alice", 0, 7, 1); err != nil {
		t.Fatal(err)
	}
	spans, err := d.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	start, end := d.SpanRange(spans[0])
	if start != 0 || end != 7 {
		t.Fatalf("span range = [%d,%d), want [0,7)", start, end)
	}
	// Inserting before the span shifts its resolved range (anchors are
	// identities, not offsets).
	d.InsertText("bob", 0, ">> ")
	start, end = d.SpanRange(spans[0])
	if start != 3 || end != 10 {
		t.Fatalf("span range after prefix insert = [%d,%d), want [3,10)", start, end)
	}
	if err := d.RemoveSpan("alice", spanID); err != nil {
		t.Fatal(err)
	}
	spans, _ = d.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans after removal, want 1", len(spans))
	}
}

func TestUndoLayout(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "layoutundo")
	d.InsertText("alice", 0, "text")
	if _, err := d.ApplyLayout("alice", 0, 4, SpanItalic, "true"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.UndoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	spans, _ := d.Spans()
	if len(spans) != 0 {
		t.Fatal("layout survived its undo")
	}
	if _, err := d.RedoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	spans, _ = d.Spans()
	if len(spans) != 1 {
		t.Fatal("layout redo did not restore the span")
	}
}

func TestNotes(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "noted")
	d.InsertText("alice", 0, "needs review here")
	if _, err := d.InsertNote("bob", 6, "please verify this claim"); err != nil {
		t.Fatal(err)
	}
	spans, _ := d.Spans()
	if len(spans) != 1 || spans[0].Kind != SpanNote {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Value != "please verify this claim" {
		t.Fatal("note text lost")
	}
}

func TestVersionsAndTimeTravel(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "versioned")
	d.InsertText("alice", 0, "draft one")
	v1, err := d.CreateVersion("alice", "v1")
	if err != nil {
		t.Fatal(err)
	}
	d.DeleteRange("alice", 6, 3)
	d.InsertText("alice", 6, "two")
	v2, _ := d.CreateVersion("alice", "v2")
	d.InsertText("bob", 0, "FINAL: ")

	got1, err := d.VersionText(v1.ID)
	if err != nil || got1 != "draft one" {
		t.Fatalf("v1 text = %q, %v", got1, err)
	}
	got2, _ := d.VersionText(v2.ID)
	if got2 != "draft two" {
		t.Fatalf("v2 text = %q", got2)
	}
	if d.Text() != "FINAL: draft two" {
		t.Fatalf("current = %q", d.Text())
	}
	versions, _ := d.Versions()
	if len(versions) != 2 || versions[0].Name != "v1" || versions[1].Name != "v2" {
		t.Fatalf("Versions = %+v", versions)
	}
	if _, err := d.VersionText(util.ID(999999)); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("bogus version err = %v", err)
	}
}

func TestReadEventsAndProperties(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "meta")
	d.InsertText("alice", 0, "content")
	if _, err := d.RecordRead("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RecordRead("carol"); err != nil {
		t.Fatal(err)
	}
	reads, err := d.ReadEvents()
	if err != nil || len(reads) != 2 {
		t.Fatalf("ReadEvents = %v, %v", reads, err)
	}
	byBob, err := e.ReadsByUser("bob")
	if err != nil || len(byBob) != 1 || byBob[0].Doc != d.ID() {
		t.Fatalf("ReadsByUser = %v, %v", byBob, err)
	}

	if err := d.SetProperty("alice", "project", "tendax"); err != nil {
		t.Fatal(err)
	}
	if err := d.SetProperty("alice", "project", "tendax-2"); err != nil {
		t.Fatal(err)
	}
	props, err := d.Properties()
	if err != nil || props["project"] != "tendax-2" {
		t.Fatalf("Properties = %v, %v", props, err)
	}
}

func TestAwarenessEventsOnCommit(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "live")
	sub := e.Bus().Subscribe(d.ID(), awareness.SubscribeOpts{})
	defer sub.Close()
	d.InsertText("alice", 0, "hi")
	d.DeleteRange("alice", 0, 1)

	ev1, _ := sub.Next()
	if ev1.Kind != awareness.EvInsert || ev1.Text != "hi" || ev1.Pos != 0 {
		t.Fatalf("ev1 = %+v", ev1)
	}
	ev2, _ := sub.Next()
	if ev2.Kind != awareness.EvDelete || ev2.N != 1 {
		t.Fatalf("ev2 = %+v", ev2)
	}
	if ev2.Seq != ev1.Seq+1 {
		t.Fatal("event sequence not dense")
	}
}

func TestHistoryRecordsAllOps(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "hist")
	d.InsertText("alice", 0, "abc")
	d.DeleteRange("alice", 0, 1)
	d.Copy("alice", 0, 2)
	d.UndoLocal("alice")
	h := d.History()
	kinds := make([]string, len(h))
	for i, op := range h {
		kinds[i] = op.Kind
	}
	want := []string{"insert", "delete", "copy", "undo"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("history kinds = %v, want %v", kinds, want)
	}
}

func TestConcurrentEditorsOnOneDocument(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "shared")
	const users, opsPer = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", u)
			for i := 0; i < opsPer; i++ {
				if _, err := d.AppendText(user, fmt.Sprintf("[%s:%d]", user, i)); err != nil {
					errs <- err
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every op's text must appear exactly once.
	text := d.Text()
	for u := 0; u < users; u++ {
		for i := 0; i < opsPer; i++ {
			frag := fmt.Sprintf("[user%d:%d]", u, i)
			if strings.Count(text, frag) != 1 {
				t.Fatalf("fragment %s appears %d times", frag, strings.Count(text, frag))
			}
		}
	}
	info := d.Info()
	if len(info.Authors) != users+1 { // +creator
		t.Fatalf("authors = %v", info.Authors)
	}
}

func TestConcurrentEditsAcrossDocuments(t *testing.T) {
	e := newEngine(t)
	const docs = 4
	var wg sync.WaitGroup
	errs := make(chan error, docs)
	for i := 0; i < docs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i)
			d, err := e.CreateDocument(user, fmt.Sprintf("doc%d", i))
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 30; j++ {
				if _, err := d.InsertText(user, d.Len(), "x"); err != nil {
					errs <- err
					return
				}
			}
			if d.Len() != 30 {
				errs <- fmt.Errorf("doc%d len = %d", i, d.Len())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	infos, err := e.ListDocuments()
	if err != nil || len(infos) != docs {
		t.Fatalf("ListDocuments = %d, %v", len(infos), err)
	}
}

func TestFindDocumentByName(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "findme")
	got, err := e.FindDocument("findme")
	if err != nil || got.ID() != d.ID() {
		t.Fatalf("FindDocument = %v, %v", got, err)
	}
	if _, err := e.FindDocument("nosuch"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("err = %v, want ErrDocNotFound", err)
	}
}

type denyChecker struct{ denyWrite bool }

func (c *denyChecker) Check(user string, doc util.ID, right Right) error {
	if right == RWrite && c.denyWrite && user != "owner" {
		return fmt.Errorf("denied: %s lacks %s", user, right)
	}
	return nil
}

func (c *denyChecker) ReadableMask(user string, doc util.ID, ids []util.ID) []bool {
	return nil
}

func TestAccessCheckerEnforced(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("owner", "guarded")
	d.InsertText("owner", 0, "secret")
	e.SetAccessChecker(&denyChecker{denyWrite: true})
	if _, err := d.InsertText("intruder", 0, "x"); err == nil {
		t.Fatal("write by intruder allowed")
	}
	if _, err := d.DeleteRange("intruder", 0, 1); err == nil {
		t.Fatal("delete by intruder allowed")
	}
	if _, err := d.InsertText("owner", 6, "!"); err != nil {
		t.Fatalf("owner write blocked: %v", err)
	}
}
