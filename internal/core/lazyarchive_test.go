package core

import (
	"testing"
	"time"

	"tendax/internal/util"
)

// buildCompacted creates a document with archived cold tombstones and
// returns it plus the instant just before the deletions (a pre-horizon
// time-travel target) and the expected texts.
func buildCompacted(t *testing.T, e *Engine) (d *Document, preDelete time.Time, fullText, hotText string) {
	t.Helper()
	d, err := e.CreateDocument("alice", "lazy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertText("alice", 0, "keep-DELETED-keep"); err != nil {
		t.Fatal(err)
	}
	preDelete = e.clock.Now()
	if _, err := d.DeleteRange("alice", 5, 7); err != nil { // "DELETED"
		t.Fatal(err)
	}
	horizon := e.clock.Now().Add(time.Hour)
	stats, err := d.Compact(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 7 {
		t.Fatalf("archived %d, want 7", stats.Archived)
	}
	return d, preDelete, "keep-DELETED-keep", "keep--keep"
}

func TestLazyArchiveOpenSkipsDecode(t *testing.T) {
	e := newEngine(t)
	d0, preDelete, fullText, hotText := buildCompacted(t, e)

	// Reopen on a fresh engine: the document must come up WITHOUT the
	// archive resident — open tracks the hot set alone.
	d := reload(t, e, d0.ID())
	if d.ArchiveResident() {
		t.Fatal("open decoded the archive eagerly")
	}
	if got := d.Text(); got != hotText {
		t.Fatalf("hot text %q, want %q", got, hotText)
	}

	// First PRE-horizon read faults the archive in and merges it
	// byte-identically.
	if got := d.TextAt(preDelete); got != fullText {
		t.Fatalf("pre-horizon TextAt %q, want %q", got, fullText)
	}
	if !d.ArchiveResident() {
		t.Fatal("pre-horizon read did not load the archive")
	}
	if got := d.ArchivedLen(); got != 7 {
		t.Fatalf("ArchivedLen %d, want 7", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyArchiveSnapshotTakenBeforeLoad(t *testing.T) {
	e := newEngine(t)
	d0, preDelete, fullText, _ := buildCompacted(t, e)

	d := reload(t, e, d0.ID())
	// Take a snapshot while the archive is still parked on disk, then
	// time-travel through it: the lazily loaded archive must merge into
	// the pre-load snapshot too.
	snap := d.Snapshot()
	if got := snap.TextAt(preDelete); got != fullText {
		t.Fatalf("pre-load snapshot TextAt %q, want %q", got, fullText)
	}
}

func TestLazyArchiveUndoRehydrates(t *testing.T) {
	e := newEngine(t)
	d0, _, fullText, _ := buildCompacted(t, e)

	d := reload(t, e, d0.ID())
	if d.ArchiveResident() {
		t.Fatal("archive resident before undo")
	}
	// Undo of the archived delete must lazily load, rehydrate, and
	// restore the full text.
	if _, err := d.UndoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if got := d.Text(); got != fullText {
		t.Fatalf("after undo %q, want %q", got, fullText)
	}
	if !d.ArchiveResident() {
		t.Fatal("undo did not load the archive")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyArchiveVersionTextLoads(t *testing.T) {
	e := newEngine(t)
	d0, err := e.CreateDocument("alice", "lazy-version")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d0.InsertText("alice", 0, "keep-DELETED-keep"); err != nil {
		t.Fatal(err)
	}
	v, err := d0.CreateVersion("alice", "before-delete")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d0.DeleteRange("alice", 5, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := d0.Compact(e.clock.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	d := reload(t, e, d0.ID())
	if d.ArchiveResident() {
		t.Fatal("archive resident before version read")
	}
	// Reconstructing the pre-delete version needs the archived cold set.
	text, err := d.VersionText(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if text != "keep-DELETED-keep" {
		t.Fatalf("version text %q", text)
	}
	if !d.ArchiveResident() {
		t.Fatal("version read did not load the archive")
	}
}

func TestLazyArchiveAnchorResolution(t *testing.T) {
	e := newEngine(t)
	d0, _, _, _ := buildCompacted(t, e)

	d := reload(t, e, d0.ID())
	if d.ArchiveResident() {
		t.Fatal("archive resident before anchored edit")
	}
	// Find an archived instance ID from the original handle (the archive
	// there is resident after compaction).
	var archID util.ID
	buf, err := d0.Buffer()
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range buf.Archive().Anchors() {
		run := buf.Archive().Run(anchor)
		archID = run[0].ID
		break
	}
	if archID.IsNil() {
		t.Fatal("no archived instance found")
	}
	// An edit anchored at the archived instance must fault the archive in
	// and land where the archived text would resume.
	if _, err := d.Apply("alice", []EditOp{
		{Kind: EditInsert, UseAnchor: true, Anchor: archID, Text: "+"},
	}); err != nil {
		t.Fatal(err)
	}
	if got := d.Text(); got != "keep-+-keep" {
		t.Fatalf("text %q, want keep-+-keep", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
