package core

import (
	"testing"
	"time"

	"tendax/internal/db"
	"tendax/internal/util"
)

// TestEverythingSurvivesReopen exercises the full persistence matrix: text,
// tombstones, spans, notes, versions, operation history (with undo state),
// properties, read events and provenance must all reload identically from
// the database after the engine is discarded.
func TestEverythingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	database, err := db.Open(db.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	clock := util.NewFakeClock(time.Unix(2_000_000, 0).UTC(), time.Millisecond)
	e, err := NewEngine(database, clock)
	if err != nil {
		t.Fatal(err)
	}

	src, _ := e.CreateDocument("alice", "src")
	src.InsertText("alice", 0, "source material")
	doc, _ := e.CreateDocument("alice", "main")
	doc.InsertText("alice", 0, "hello world, persistent edition")
	doc.DeleteRange("bob", 0, 6) // "world, persistent edition"
	clip, _ := src.Copy("bob", 0, 6)
	doc.Paste("bob", 0, clip) // "sourceworld, ..."
	spanID, _ := doc.ApplyLayout("alice", 0, 6, SpanBold, "true")
	noteID, _ := doc.InsertNote("carol", 3, "check spelling")
	v, _ := doc.CreateVersion("alice", "milestone")
	doc.UndoLocal("bob") // undo the paste
	doc.SetProperty("alice", "project", "tendax")
	doc.RecordRead("dave")
	wantText := doc.Text()
	wantHistory := doc.History()
	docID, srcID := doc.ID(), src.ID()

	if err := database.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh database + engine from the same directory.
	db2, err := db.Open(db.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	e2, err := NewEngine(db2, clock)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := e2.OpenDocument(docID)
	if err != nil {
		t.Fatal(err)
	}

	if doc2.Text() != wantText {
		t.Fatalf("text after reopen: %q want %q", doc2.Text(), wantText)
	}
	if err := doc2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// History (incl. undo flags).
	gotHistory := doc2.History()
	if len(gotHistory) != len(wantHistory) {
		t.Fatalf("history length %d want %d", len(gotHistory), len(wantHistory))
	}
	for i := range wantHistory {
		w, g := wantHistory[i], gotHistory[i]
		if g.ID != w.ID || g.Kind != w.Kind || g.User != w.User || g.Undone != w.Undone || g.Chars != w.Chars {
			t.Fatalf("history[%d]: got %+v want %+v", i, g, w)
		}
	}

	// Redo still works against the reloaded log: redo bob's undone paste.
	if _, err := doc2.RedoLocal("bob"); err != nil {
		t.Fatalf("redo after reopen: %v", err)
	}
	if doc2.Len() != len([]rune(wantText))+6 {
		t.Fatalf("redo after reopen wrong length: %d", doc2.Len())
	}

	// Spans.
	spans, err := doc2.Spans()
	if err != nil {
		t.Fatal(err)
	}
	foundBold, foundNote := false, false
	for _, s := range spans {
		if s.ID == spanID && s.Kind == SpanBold {
			foundBold = true
		}
		if s.ID == noteID && s.Kind == SpanNote && s.Value == "check spelling" {
			foundNote = true
		}
	}
	if !foundBold || !foundNote {
		t.Fatalf("spans lost across reopen: %+v", spans)
	}

	// Versions reconstruct the old text.
	versions, err := doc2.Versions()
	if err != nil || len(versions) != 1 || versions[0].ID != v.ID {
		t.Fatalf("versions = %+v, %v", versions, err)
	}
	vtext, err := doc2.VersionText(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(vtext) == 0 {
		t.Fatal("version text empty after reopen")
	}

	// Properties and read events.
	props, _ := doc2.Properties()
	if props["project"] != "tendax" {
		t.Fatalf("props = %v", props)
	}
	reads, _ := doc2.ReadEvents()
	if len(reads) != 1 || reads[0].User != "dave" {
		t.Fatalf("reads = %+v", reads)
	}

	// Provenance of the re-done paste points at src.
	metas, err := doc2.RangeMeta(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metas {
		if m.SourceDoc != srcID {
			t.Fatalf("provenance lost: %+v", m)
		}
	}
}

// TestLargeOpChunkingRoundTrip covers operations whose char-ID payload
// spills into continuation rows: they must reload and undo correctly.
func TestLargeOpChunkingRoundTrip(t *testing.T) {
	database, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	clock := util.NewFakeClock(time.Unix(2_000_000, 0).UTC(), time.Millisecond)
	e, _ := NewEngine(database, clock)
	doc, _ := e.CreateDocument("alice", "big")
	big := make([]rune, 1000) // 1000 ids = 8000 bytes: needs 7 chunks
	for i := range big {
		big[i] = rune('a' + i%26)
	}
	if _, err := doc.InsertText("alice", 0, string(big)); err != nil {
		t.Fatal(err)
	}
	if doc.Len() != 1000 {
		t.Fatalf("len = %d", doc.Len())
	}

	// Reload the ops log from scratch and undo the big insert.
	e2, _ := NewEngine(database, clock)
	doc2, err := e2.OpenDocument(doc.ID())
	if err != nil {
		t.Fatal(err)
	}
	h := doc2.History()
	if len(h) != 1 || h[0].Chars != 1000 {
		t.Fatalf("history after reload = %+v", h)
	}
	if _, err := doc2.UndoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if doc2.Len() != 0 {
		t.Fatalf("undo of chunked op incomplete: %d chars left", doc2.Len())
	}
	if _, err := doc2.RedoLocal("alice"); err != nil {
		t.Fatal(err)
	}
	if doc2.Len() != 1000 {
		t.Fatalf("redo of chunked op incomplete: %d", doc2.Len())
	}
}

// TestUndoRedoInverseProperty: randomized histories where undo∘redo and
// redo∘undo always restore the exact text (per user, interleaved).
func TestUndoRedoInverseProperty(t *testing.T) {
	database, _ := db.Open(db.Options{})
	defer database.Close()
	clock := util.NewFakeClock(time.Unix(2_000_000, 0).UTC(), time.Millisecond)
	e, _ := NewEngine(database, clock)
	doc, _ := e.CreateDocument("u0", "prop")
	rng := util.NewRand(271)
	users := []string{"u0", "u1", "u2"}
	for step := 0; step < 120; step++ {
		user := users[rng.Intn(len(users))]
		if doc.Len() == 0 || rng.Float64() < 0.7 {
			pos := 0
			if doc.Len() > 0 {
				pos = rng.Intn(doc.Len() + 1)
			}
			if _, err := doc.InsertText(user, pos, rng.Letters(1+rng.Intn(6))); err != nil {
				t.Fatal(err)
			}
		} else {
			pos := rng.Intn(doc.Len())
			n := 1 + rng.Intn(3)
			if pos+n > doc.Len() {
				n = doc.Len() - pos
			}
			if n > 0 {
				if _, err := doc.DeleteRange(user, pos, n); err != nil {
					t.Fatal(err)
				}
			}
		}
		if rng.Float64() < 0.2 {
			before := doc.Text()
			u := users[rng.Intn(len(users))]
			if _, err := doc.UndoLocal(u); err == nil {
				if _, err := doc.RedoLocal(u); err != nil {
					t.Fatalf("step %d: redo failed after undo: %v", step, err)
				}
				if doc.Text() != before {
					t.Fatalf("step %d: undo∘redo not identity:\n%q\n%q",
						step, before, doc.Text())
				}
			}
		}
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
