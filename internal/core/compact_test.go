package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tendax/internal/db"
	"tendax/internal/storage"
	"tendax/internal/util"
	"tendax/internal/wal"
)

// compactFixture builds a document with interleaved inserts and deletes on
// a fake clock and records every read a compaction pass must preserve.
type compactFixture struct {
	e     *Engine
	doc   *Document
	clock *util.FakeClock

	instants []time.Time // sampled instants spanning the whole history
	texts    []string    // TextAt reference at each instant
	version  Version
	verText  string
}

func buildCompactFixture(t *testing.T, database *db.Database, chunks int) *compactFixture {
	t.Helper()
	clock := util.NewFakeClock(time.Unix(3_000_000, 0).UTC(), time.Millisecond)
	e, err := NewEngine(database, clock)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := e.CreateDocument("alice", "compact-me")
	if err != nil {
		t.Fatal(err)
	}
	f := &compactFixture{e: e, doc: doc, clock: clock}
	rng := rand.New(rand.NewSource(71))
	users := []string{"alice", "bob"}
	for i := 0; i < chunks; i++ {
		user := users[i%2]
		if _, err := doc.AppendText(user, fmt.Sprintf("[chunk-%02d-%s]", i, strings.Repeat("x", rng.Intn(8)))); err != nil {
			t.Fatal(err)
		}
		if i == chunks/2 {
			if f.version, err = doc.CreateVersion("alice", "midpoint"); err != nil {
				t.Fatal(err)
			}
		}
		if doc.Len() > 8 && rng.Intn(2) == 0 {
			pos := rng.Intn(doc.Len() - 4)
			if _, err := doc.DeleteRange(user, pos, 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		}
		f.instants = append(f.instants, clock.Peek())
	}
	for _, at := range f.instants {
		f.texts = append(f.texts, doc.TextAt(at))
	}
	if f.verText, err = doc.VersionText(f.version.ID); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *compactFixture) checkReads(t *testing.T, label string, d *Document) {
	t.Helper()
	for i, at := range f.instants {
		if got := d.TextAt(at); got != f.texts[i] {
			t.Fatalf("%s: TextAt instant %d diverged:\n got %q\nwant %q", label, i, got, f.texts[i])
		}
	}
	vt, err := d.VersionText(f.version.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vt != f.verText {
		t.Fatalf("%s: VersionText diverged", label)
	}
	hunks, err := d.DiffVersions(f.version.ID, util.NilID)
	if err != nil {
		t.Fatal(err)
	}
	if FormatDiff(DiffTexts(f.verText, d.Text())) != FormatDiff(hunks) {
		t.Fatalf("%s: DiffVersions diverged from reference diff", label)
	}
}

// TestCompactPreservesEveryRead archives the cold tombstones of a mixed
// history and verifies Text, TextAt at every sampled instant, VersionText,
// DiffVersions and Authors are byte-for-byte identical — then reopens the
// store from disk and checks it all again (the archive load path).
func TestCompactPreservesEveryRead(t *testing.T) {
	dir := t.TempDir()
	database, err := db.Open(db.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	f := buildCompactFixture(t, database, 40)
	doc := f.doc
	text, authors := doc.Text(), strings.Join(docAuthors(t, doc), ",")
	hotBefore := doc.Snapshot().TotalLen()

	// Horizon strictly after every recorded deletion: everything is cold.
	stats, err := doc.Compact(f.clock.Peek().Add(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived == 0 || stats.Runs == 0 {
		t.Fatalf("nothing archived: %+v", stats)
	}
	if stats.HotAfter != hotBefore-stats.Archived {
		t.Fatalf("hot accounting wrong: %+v (before %d)", stats, hotBefore)
	}
	if doc.ArchivedLen() != stats.Archived {
		t.Fatalf("ArchivedLen %d, stats %d", doc.ArchivedLen(), stats.Archived)
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if doc.Text() != text {
		t.Fatal("visible text changed")
	}
	if got := strings.Join(docAuthors(t, doc), ","); got != authors {
		t.Fatalf("Authors changed: %v vs %v", got, authors)
	}
	f.checkReads(t, "compacted", doc)

	// A second pass with nothing newly cold must be a no-op.
	stats2, err := doc.Compact(f.clock.Peek())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Archived != 0 {
		t.Fatalf("second pass archived %d", stats2.Archived)
	}

	// Reopen from disk: the hot load must shrink to the compacted set and
	// the archive must serve the full history.
	docID := doc.ID()
	if err := database.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := db.Open(db.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	e2, err := NewEngine(db2, f.clock)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := e2.OpenDocument(docID)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Text() != text {
		t.Fatalf("reloaded text diverged:\n got %q\nwant %q", doc2.Text(), text)
	}
	if doc2.Snapshot().TotalLen() != stats.HotAfter {
		t.Fatalf("reloaded hot set %d, want %d", doc2.Snapshot().TotalLen(), stats.HotAfter)
	}
	if doc2.ArchivedLen() != stats.Archived {
		t.Fatalf("reloaded archive %d, want %d", doc2.ArchivedLen(), stats.Archived)
	}
	if err := doc2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f.checkReads(t, "reloaded", doc2)
}

func docAuthors(t *testing.T, d *Document) []string {
	t.Helper()
	buf, err := d.Buffer()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Authors()
}

// TestUndoRehydratesArchivedDelete pins the rehydration path: undoing a
// delete whose tombstones were archived must bring the instances back into
// the chars table and the hot chain, restore the text, keep the deletion
// interval visible to time travel, and survive a reopen. A redo must then
// hide them again.
func TestUndoRehydratesArchivedDelete(t *testing.T) {
	dir := t.TempDir()
	database, err := db.Open(db.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	clock := util.NewFakeClock(time.Unix(4_000_000, 0).UTC(), time.Millisecond)
	e, err := NewEngine(database, clock)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := e.CreateDocument("alice", "undo-archive")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.AppendText("alice", "the quick brown fox"); err != nil {
		t.Fatal(err)
	}
	full := doc.Text()
	preDelete := clock.Peek()
	if _, err := doc.DeleteRange("bob", 4, 6); err != nil { // "quick "
		t.Fatal(err)
	}
	deleted := doc.Text()
	postDelete := clock.Peek()

	stats, err := doc.Compact(clock.Peek().Add(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 6 {
		t.Fatalf("archived %d, want 6", stats.Archived)
	}

	if _, err := doc.UndoLocal("bob"); err != nil {
		t.Fatal(err)
	}
	if doc.Text() != full {
		t.Fatalf("undo of archived delete: %q, want %q", doc.Text(), full)
	}
	if doc.ArchivedLen() != 0 {
		t.Fatalf("%d instances still archived after rehydration", doc.ArchivedLen())
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Time travel must still see the deletion interval.
	if got := doc.TextAt(postDelete); got != deleted {
		t.Fatalf("TextAt inside interval = %q, want %q", got, deleted)
	}
	if got := doc.TextAt(preDelete); got != full {
		t.Fatalf("TextAt before interval = %q, want %q", got, full)
	}

	// The rehydrated rows must be durable: reopen and re-check.
	docID := doc.ID()
	if err := database.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := db.Open(db.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	e2, err := NewEngine(db2, clock)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := e2.OpenDocument(docID)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Text() != full {
		t.Fatalf("reloaded undo state: %q, want %q", doc2.Text(), full)
	}
	if doc2.ArchivedLen() != 0 {
		t.Fatal("archive rows survived rehydration")
	}
	if err := doc2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Redo re-hides exactly the rehydrated set.
	if _, err := doc2.RedoLocal("bob"); err != nil {
		t.Fatal(err)
	}
	if doc2.Text() != deleted {
		t.Fatalf("redo: %q, want %q", doc2.Text(), deleted)
	}
}

// TestCompactCrashSafety drives the two crash schedules around the
// compaction transaction: a crash with the commit on disk must replay the
// whole pass (archive present, tombstones gone), and a crash with a torn
// commit must roll the whole pass back (tombstones intact, no archive) —
// with every read identical either way.
func TestCompactCrashSafety(t *testing.T) {
	disk := storage.NewMemDisk()
	store := wal.NewMemStore()
	database, err := db.OpenWith(disk, store, db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := buildCompactFixture(t, database, 25)
	doc := f.doc
	text := doc.Text()
	docID := doc.ID()
	hotBefore := doc.Snapshot().TotalLen()

	stats, err := doc.Compact(f.clock.Peek())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived == 0 {
		t.Fatal("nothing archived")
	}
	logBytes, err := store.ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	reopen := func(tear int) (*Document, *db.Database) {
		t.Helper()
		crashStore := wal.NewMemStore()
		crashStore.Append(logBytes)
		if tear > 0 {
			crashStore.Truncate(crashStore.Len() - tear)
		}
		// Pages are lost entirely: redo rebuilds everything from the log.
		db2, err := db.OpenWith(storage.NewMemDisk(), crashStore, db.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e2, err := NewEngine(db2, f.clock)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := e2.OpenDocument(docID)
		if err != nil {
			t.Fatal(err)
		}
		return d2, db2
	}

	// Intact log: the compaction replays.
	replayed, _ := reopen(0)
	if replayed.Text() != text {
		t.Fatal("replayed compaction changed the text")
	}
	if replayed.ArchivedLen() != stats.Archived {
		t.Fatalf("replayed archive %d, want %d", replayed.ArchivedLen(), stats.Archived)
	}
	if replayed.Snapshot().TotalLen() != stats.HotAfter {
		t.Fatalf("replayed hot set %d, want %d", replayed.Snapshot().TotalLen(), stats.HotAfter)
	}
	if err := replayed.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f.checkReads(t, "replayed", replayed)

	// Torn tail: the compaction transaction loses its commit record and
	// must roll back in one piece — the document reverts to the full
	// uncompacted tombstone set.
	torn, _ := reopen(3)
	if torn.Text() != text {
		t.Fatal("rolled-back compaction changed the text")
	}
	if torn.ArchivedLen() != 0 {
		t.Fatalf("rolled-back pass left %d archived", torn.ArchivedLen())
	}
	if torn.Snapshot().TotalLen() != hotBefore {
		t.Fatalf("rolled-back hot set %d, want %d", torn.Snapshot().TotalLen(), hotBefore)
	}
	if err := torn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f.checkReads(t, "rolled back", torn)
}

// TestBackgroundCompactor exercises the engine-level compactor: with a
// short interval and zero retention it must archive tombstones of open
// documents without help, and stop cleanly.
func TestBackgroundCompactor(t *testing.T) {
	database, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	e, err := NewEngine(database, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := e.CreateDocument("alice", "bg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.AppendText("alice", "abcdefghij"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.DeleteRange("alice", 2, 5); err != nil {
		t.Fatal(err)
	}
	e.StartCompactor(5*time.Millisecond, 0)
	deadline := time.Now().Add(5 * time.Second)
	for doc.ArchivedLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := e.StopCompactor(); err != nil {
		t.Fatal(err)
	}
	if doc.ArchivedLen() != 5 {
		t.Fatalf("background compactor archived %d, want 5", doc.ArchivedLen())
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionVsReadersFuzz runs writers, MVCC snapshot readers and a
// concurrent compactor against one document under the race detector: no
// published snapshot may ever tear, and reads before the advancing horizon
// must stay serveable throughout. The full-size variant runs in the
// nightly un-short suite.
func TestCompactionVsReadersFuzz(t *testing.T) {
	writers, readers, ops := 4, 3, 120
	if testing.Short() {
		writers, readers, ops = 2, 2, 40
	}
	database, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	e, err := NewEngine(database, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := e.CreateDocument("u0", "fuzz")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.AppendText("u0", strings.Repeat("seed ", 40)); err != nil {
		t.Fatal(err)
	}
	epoch := e.Clock().Now()

	var stop atomic.Bool
	var wwg, rwg sync.WaitGroup
	errCh := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			user := fmt.Sprintf("u%d", w)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < ops; i++ {
				switch rng.Intn(3) {
				case 0:
					// Sample the length once: other writers shrink the
					// document between reads, and a stale length only means
					// an out-of-range delete (ignored), never a panic.
					if n := doc.Len(); n > 20 {
						if _, err := doc.DeleteRange(user, rng.Intn(n-8), 1+rng.Intn(4)); err != nil && !strings.Contains(err.Error(), "out of range") {
							errCh <- err
							return
						}
						continue
					}
					fallthrough
				case 1:
					if _, err := doc.AppendText(user, "ab"); err != nil {
						errCh <- err
						return
					}
				default:
					if _, err := doc.UndoLocal(user); err != nil && err != ErrNothingToUndo {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for !stop.Load() {
				s := doc.Snapshot()
				if err := s.Tree().CheckInvariants(); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if s.Len() != len([]rune(s.Text())) {
					errCh <- fmt.Errorf("reader %d: snapshot len tore", r)
					return
				}
				_ = s.TextAt(epoch) // crosses the horizon once compaction runs
			}
		}(r)
	}
	// Concurrent compactor: archive everything cold as of "now", as fast
	// as it can.
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stop.Load() {
			if _, err := doc.Compact(e.Clock().Now()); err != nil {
				errCh <- fmt.Errorf("compactor: %w", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wwg.Wait()       // writers burn their op budget
	stop.Store(true) // then stop the readers and the compactor
	rwg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanAnchorsSurviveCompaction pins the span-resolution contract
// across the horizon: a span whose anchor characters were deleted (so the
// anchors are tombstones) must resolve to the same visible range, render
// the same markup and keep its outline entry after compaction archives
// the anchors — an archived tombstone's text resumes directly after its
// run's anchor, exactly like a hot tombstone's.
func TestSpanAnchorsSurviveCompaction(t *testing.T) {
	database, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	clock := util.NewFakeClock(time.Unix(5_000_000, 0).UTC(), time.Millisecond)
	e, err := NewEngine(database, clock)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := e.CreateDocument("alice", "spans")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.AppendText("alice", "TITLE then hello WORLD bye"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.ApplyLayout("alice", 0, 5, SpanHeading, "1"); err != nil { // "TITLE"
		t.Fatal(err)
	}
	if _, err := doc.ApplyLayout("alice", 17, 5, SpanBold, "true"); err != nil { // "WORLD"
		t.Fatal(err)
	}
	// Tombstone both spans' start anchors: the heading start ("TI") and
	// the bold start ("WOR").
	if _, err := doc.DeleteRange("bob", 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.DeleteRange("bob", 15, 3); err != nil {
		t.Fatal(err)
	}
	spans, err := doc.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	type rng struct{ from, to int }
	ranges := func() []rng {
		out := make([]rng, 0, len(spans))
		for _, sp := range spans {
			f, to := doc.SpanRange(sp)
			out = append(out, rng{f, to})
		}
		return out
	}
	before := ranges()
	markup, err := doc.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	outline, err := doc.Outline()
	if err != nil {
		t.Fatal(err)
	}
	if len(outline) != 1 {
		t.Fatalf("%d outline entries before compaction", len(outline))
	}

	stats, err := doc.Compact(clock.Peek().Add(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived != 5 {
		t.Fatalf("archived %d, want 5", stats.Archived)
	}
	after := ranges()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("span %d range changed across compaction: %v -> %v", i, before[i], after[i])
		}
	}
	markup2, err := doc.RenderMarkup()
	if err != nil {
		t.Fatal(err)
	}
	if markup2 != markup {
		t.Fatalf("markup changed across compaction:\n before %q\n after  %q", markup, markup2)
	}
	outline2, err := doc.Outline()
	if err != nil {
		t.Fatal(err)
	}
	if len(outline2) != 1 || outline2[0] != outline[0] {
		t.Fatalf("outline changed across compaction: %+v -> %+v", outline, outline2)
	}
}
