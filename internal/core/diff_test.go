package core

import (
	"strings"
	"testing"
	"testing/quick"

	"tendax/internal/util"
)

func TestDiffTextsBasics(t *testing.T) {
	hunks := DiffTexts("a\nb\nc", "a\nX\nc")
	// keep a, delete b, add X, keep c (delete/add order may produce
	// add-then-delete depending on tie-breaks; verify content).
	var dels, adds, keeps []string
	for _, h := range hunks {
		switch h.Kind {
		case DiffDelete:
			dels = append(dels, h.Lines...)
		case DiffAdd:
			adds = append(adds, h.Lines...)
		case DiffKeep:
			keeps = append(keeps, h.Lines...)
		}
	}
	if len(keeps) != 2 || keeps[0] != "a" || keeps[1] != "c" {
		t.Fatalf("keeps = %v", keeps)
	}
	if len(dels) != 1 || dels[0] != "b" {
		t.Fatalf("dels = %v", dels)
	}
	if len(adds) != 1 || adds[0] != "X" {
		t.Fatalf("adds = %v", adds)
	}
}

func TestDiffTextsEdges(t *testing.T) {
	if hunks := DiffTexts("", ""); len(hunks) != 0 {
		t.Fatalf("empty diff = %v", hunks)
	}
	hunks := DiffTexts("", "new\nlines")
	if len(hunks) != 1 || hunks[0].Kind != DiffAdd || len(hunks[0].Lines) != 2 {
		t.Fatalf("all-add = %v", hunks)
	}
	hunks = DiffTexts("old", "")
	if len(hunks) != 1 || hunks[0].Kind != DiffDelete {
		t.Fatalf("all-delete = %v", hunks)
	}
	same := DiffTexts("x\ny", "x\ny")
	if len(same) != 1 || same[0].Kind != DiffKeep {
		t.Fatalf("identity diff = %v", same)
	}
}

// TestDiffReconstructionProperty: applying a diff to its source yields its
// target (adds+keeps in order == target; deletes+keeps == source).
func TestDiffReconstructionProperty(t *testing.T) {
	f := func(aw, bw []byte) bool {
		a := linesFromBytes(aw)
		b := linesFromBytes(bw)
		hunks := DiffTexts(a, b)
		var src, dst []string
		for _, h := range hunks {
			switch h.Kind {
			case DiffKeep:
				src = append(src, h.Lines...)
				dst = append(dst, h.Lines...)
			case DiffDelete:
				src = append(src, h.Lines...)
			case DiffAdd:
				dst = append(dst, h.Lines...)
			}
		}
		return strings.Join(src, "\n") == a && strings.Join(dst, "\n") == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// linesFromBytes derives a small multi-line text from fuzz bytes, keeping
// line counts bounded so the LCS table stays small.
func linesFromBytes(b []byte) string {
	var lines []string
	for i, c := range b {
		if i >= 20 {
			break
		}
		lines = append(lines, string('a'+rune(c%5)))
	}
	return strings.Join(lines, "\n")
}

func TestDiffVersionsOnDocument(t *testing.T) {
	e := newEngine(t)
	d, _ := e.CreateDocument("alice", "diffed")
	d.InsertText("alice", 0, "line one\nline two\nline three")
	v1, _ := d.CreateVersion("alice", "v1")
	// Replace "two" with "2".
	d.DeleteRange("alice", 14, 3)
	d.InsertText("alice", 14, "2")
	v2, _ := d.CreateVersion("alice", "v2")

	hunks, err := d.DiffVersions(v1.ID, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	rendered := FormatDiff(hunks)
	if !strings.Contains(rendered, "- line two") || !strings.Contains(rendered, "+ line 2") {
		t.Fatalf("diff:\n%s", rendered)
	}
	if !strings.Contains(rendered, "  line one") {
		t.Fatalf("diff lost context:\n%s", rendered)
	}

	// Diff against the current text.
	d.InsertText("bob", d.Len(), "\nline four")
	hunks, err = d.DiffVersions(v2.ID, util.NilID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatDiff(hunks), "+ line four") {
		t.Fatalf("diff vs current:\n%s", FormatDiff(hunks))
	}
}
