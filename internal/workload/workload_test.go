package workload

import (
	"testing"
	"time"

	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/util"
)

func fixture(t *testing.T) *core.Engine {
	t.Helper()
	database, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { database.Close() })
	eng, err := core.NewEngine(database, util.NewFakeClock(time.Unix(1_000_000, 0).UTC(), time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestTypistDeterministic(t *testing.T) {
	run := func() string {
		eng := fixture(t)
		doc, _ := eng.CreateDocument("u", "d")
		ty := NewTypist("u", 42)
		if err := ty.Run(doc, 200); err != nil {
			t.Fatal(err)
		}
		return doc.Text()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("same seed produced different documents")
	}
	if len(a) == 0 {
		t.Fatal("typist produced nothing")
	}
}

func TestTypistKeepsInvariants(t *testing.T) {
	eng := fixture(t)
	doc, _ := eng.CreateDocument("u", "d")
	ty := NewTypist("u", 7)
	if err := ty.Run(doc, 500); err != nil {
		t.Fatal(err)
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCorpusShape(t *testing.T) {
	eng := fixture(t)
	docs, err := BuildCorpus(eng, CorpusSpec{
		Docs: 30, Users: 5, MeanSize: 60, ReadRatio: 1.0, StateSplit: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 30 {
		t.Fatalf("built %d docs", len(docs))
	}
	infos, _ := eng.ListDocuments()
	if len(infos) != 30 {
		t.Fatalf("engine lists %d docs", len(infos))
	}
	finals := 0
	for _, in := range infos {
		if in.Size == 0 {
			t.Fatalf("doc %s empty", in.Name)
		}
		if in.State == "final" {
			finals++
		}
	}
	if finals == 0 || finals == 30 {
		t.Fatalf("state split produced %d finals", finals)
	}
}

func TestBuildPasteChainsEdges(t *testing.T) {
	eng := fixture(t)
	docs, edges, err := BuildPasteChains(eng, PasteChainSpec{
		Depth: 2, FanOut: 3, ChunkLen: 10, Externals: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 root + 3 + 9 children.
	if len(docs) != 13 {
		t.Fatalf("%d docs", len(docs))
	}
	// 2 external pastes + 12 child pastes.
	if edges != 14 {
		t.Fatalf("%d edges", edges)
	}
	// Children carry provenance from their parents.
	child := docs[1]
	metas, err := child.RangeMeta(0, child.Len())
	if err != nil {
		t.Fatal(err)
	}
	hasProv := false
	for _, m := range metas {
		if m.SourceDoc == docs[0].ID() {
			hasProv = true
			break
		}
	}
	if !hasProv {
		t.Fatal("child has no provenance from root")
	}
}

func TestLatencyRecorder(t *testing.T) {
	var r LatencyRecorder
	if r.Percentile(50) != 0 || r.Mean() != 0 {
		t.Fatal("empty recorder nonzero")
	}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.N() != 100 {
		t.Fatalf("N = %d", r.N())
	}
	if p := r.Percentile(50); p != 50*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := r.Percentile(99); p != 99*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if m := r.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
}
