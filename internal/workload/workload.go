// Package workload provides deterministic workload generators for the
// TeNDaX experiments: typist streams, copy-paste chains, multi-user
// LAN-party scripts and corpus builders. They replace the human demo
// participants with reproducible, parameterised drivers (see DESIGN.md,
// substitutions).
package workload

import (
	"fmt"
	"time"

	"tendax/internal/core"
	"tendax/internal/util"
)

// Typist simulates one user's keystroke stream on a document: mostly
// inserts at a wandering cursor, some deletions, in natural-language-shaped
// bursts.
type Typist struct {
	User        string
	rng         *util.Rand
	DeleteRatio float64 // fraction of ops that delete (default 0.15)
	BurstLen    int     // characters per insert burst (default 8)
}

// NewTypist returns a deterministic typist.
func NewTypist(user string, seed uint64) *Typist {
	return &Typist{User: user, rng: util.NewRand(seed), DeleteRatio: 0.15, BurstLen: 8}
}

// Step performs one editing operation on doc and reports what it did.
func (t *Typist) Step(doc *core.Document) (kind string, err error) {
	n := doc.Len()
	if n > 0 && t.rng.Float64() < t.DeleteRatio {
		pos := t.rng.Intn(n)
		del := 1 + t.rng.Intn(3)
		if pos+del > n {
			del = n - pos
		}
		if del > 0 {
			_, err = doc.DeleteRange(t.User, pos, del)
			return "delete", err
		}
	}
	pos := 0
	if n > 0 {
		pos = t.rng.Intn(n + 1)
	}
	burst := 1 + t.rng.Intn(t.BurstLen)
	_, err = doc.InsertText(t.User, pos, t.rng.Letters(burst))
	return "insert", err
}

// Run performs steps operations.
func (t *Typist) Run(doc *core.Document, steps int) error {
	for i := 0; i < steps; i++ {
		if _, err := t.Step(doc); err != nil {
			return fmt.Errorf("workload: %s step %d: %w", t.User, i, err)
		}
	}
	return nil
}

// CorpusSpec parameterises a synthetic document corpus. With Clusters > 0
// the corpus gets latent structure: documents of the same cluster share a
// size regime, author count and read activity (what a real document space
// looks like — memos vs. co-authored reports vs. archives), which visual
// mining should recover.
type CorpusSpec struct {
	Docs       int
	Users      int
	MeanSize   int     // characters per document
	ReadRatio  float64 // read events per document
	StateSplit float64 // fraction marked "final"
	Clusters   int     // 0 = unstructured
	Seed       uint64
}

// BuildCorpus populates the engine with a deterministic document corpus and
// returns the created documents.
func BuildCorpus(eng *core.Engine, spec CorpusSpec) ([]*core.Document, error) {
	rng := util.NewRand(spec.Seed)
	if spec.Users < 1 {
		spec.Users = 1
	}
	if spec.MeanSize < 8 {
		spec.MeanSize = 8
	}
	docs := make([]*core.Document, 0, spec.Docs)
	for i := 0; i < spec.Docs; i++ {
		creator := fmt.Sprintf("user%d", rng.Intn(spec.Users))
		d, err := eng.CreateDocument(creator, fmt.Sprintf("doc-%04d", i))
		if err != nil {
			return nil, err
		}
		size := spec.MeanSize/2 + rng.Intn(spec.MeanSize)
		authors := 1 + rng.Intn(3)
		reads := 0
		if rng.Float64() < spec.ReadRatio {
			reads = 1
		}
		if spec.Clusters > 0 {
			// Cluster-correlated regimes with mild noise.
			cluster := i % spec.Clusters
			size = (cluster + 1) * spec.MeanSize / 2
			size += rng.Intn(1+size/8) - size/16
			if size < 4 {
				size = 4
			}
			authors = 1 + cluster%3
			reads = cluster * (1 + rng.Intn(2))
		}
		for a := 0; a < authors; a++ {
			user := fmt.Sprintf("user%d", (i+a)%spec.Users)
			chunk := size / authors
			if chunk < 1 {
				chunk = 1
			}
			if _, err := d.AppendText(user, rng.Letters(chunk)); err != nil {
				return nil, err
			}
		}
		for r := 0; r < reads; r++ {
			reader := fmt.Sprintf("user%d", rng.Intn(spec.Users))
			if _, err := d.RecordRead(reader); err != nil {
				return nil, err
			}
		}
		if rng.Float64() < spec.StateSplit {
			if err := d.SetState(creator, "final"); err != nil {
				return nil, err
			}
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// PasteChainSpec parameterises a copy-paste provenance tree: Depth
// generations, each document pasting from its parent, FanOut children per
// node — the synthetic workload that regenerates Figure 1.
type PasteChainSpec struct {
	Depth     int
	FanOut    int
	ChunkLen  int // characters copied per paste
	Externals int // external sources pasted into the root
	Seed      uint64
}

// BuildPasteChains creates the provenance tree and returns all documents,
// root first, plus the number of paste edges created.
func BuildPasteChains(eng *core.Engine, spec PasteChainSpec) ([]*core.Document, int, error) {
	rng := util.NewRand(spec.Seed)
	if spec.ChunkLen < 1 {
		spec.ChunkLen = 16
	}
	root, err := eng.CreateDocument("author0", "root")
	if err != nil {
		return nil, 0, err
	}
	if _, err := root.AppendText("author0", rng.Letters(spec.ChunkLen*4)); err != nil {
		return nil, 0, err
	}
	edges := 0
	for i := 0; i < spec.Externals; i++ {
		ext, err := eng.CreateExternalSource(fmt.Sprintf("https://example.org/src-%d", i))
		if err != nil {
			return nil, 0, err
		}
		if _, err := root.Paste("author0", 0, core.Clipboard{
			Text: rng.Letters(spec.ChunkLen), SrcDoc: ext,
		}); err != nil {
			return nil, 0, err
		}
		edges++
	}
	docs := []*core.Document{root}
	frontier := []*core.Document{root}
	gen := 0
	for depth := 1; depth <= spec.Depth; depth++ {
		var next []*core.Document
		for _, parent := range frontier {
			for f := 0; f < spec.FanOut; f++ {
				gen++
				user := fmt.Sprintf("author%d", gen%7)
				child, err := eng.CreateDocument(user, fmt.Sprintf("d%d-%d", depth, gen))
				if err != nil {
					return nil, 0, err
				}
				if _, err := child.AppendText(user, rng.Letters(spec.ChunkLen)); err != nil {
					return nil, 0, err
				}
				n := spec.ChunkLen
				if parent.Len() < n {
					n = parent.Len()
				}
				clip, err := parent.Copy(user, 0, n)
				if err != nil {
					return nil, 0, err
				}
				if _, err := child.Paste(user, child.Len(), clip); err != nil {
					return nil, 0, err
				}
				edges++
				docs = append(docs, child)
				next = append(next, child)
			}
		}
		frontier = next
	}
	return docs, edges, nil
}

// LatencyRecorder collects operation latencies and reports percentiles.
type LatencyRecorder struct {
	samples []time.Duration
}

// Record adds one sample.
func (l *LatencyRecorder) Record(d time.Duration) { l.samples = append(l.samples, d) }

// N returns the number of samples.
func (l *LatencyRecorder) N() int { return len(l.samples) }

// Percentile returns the p-th percentile (0 < p <= 100).
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the mean latency.
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}
