// BenchmarkE14Compaction regenerates experiment E14 (DESIGN.md §6): the
// cost of opening a long-lived, mostly-deleted document with and without
// tombstone compaction, plus the cost of the compaction pass itself.
package tendax_test

import (
	"testing"

	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/util"
)

// e14Doc builds a document of `chars` instances with 90% deleted and
// returns the engine, database and document.
func e14Doc(b *testing.B, chars int) (*core.Engine, *db.Database, *core.Document) {
	b.Helper()
	database, err := db.Open(db.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(database, nil)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := eng.CreateDocument("u", "e14")
	if err != nil {
		b.Fatal(err)
	}
	rng := util.NewRand(14)
	for doc.Len() < chars {
		chunk := chars - doc.Len()
		if chunk > 500 {
			chunk = 500
		}
		if _, err := doc.AppendText("u", rng.Letters(chunk)); err != nil {
			b.Fatal(err)
		}
	}
	for deleted := 0; deleted < chars*9/10; {
		n := chars*9/10 - deleted
		if n > 500 {
			n = 500
		}
		if _, err := doc.DeleteRange("u", 0, n); err != nil {
			b.Fatal(err)
		}
		deleted += n
	}
	return eng, database, doc
}

func BenchmarkE14Compaction(b *testing.B) {
	const chars = 20_000
	load := func(b *testing.B, database *db.Database, doc *core.Document) {
		b.Helper()
		docID := doc.ID()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e2, err := core.NewEngine(database, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e2.OpenDocument(docID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("load/uncompacted", func(b *testing.B) {
		_, database, doc := e14Doc(b, chars)
		defer database.Close()
		b.ReportMetric(float64(doc.Snapshot().TotalLen()), "hot-instances")
		load(b, database, doc)
	})
	b.Run("load/compacted", func(b *testing.B) {
		eng, database, doc := e14Doc(b, chars)
		defer database.Close()
		stats, err := doc.Compact(eng.Clock().Now())
		if err != nil {
			b.Fatal(err)
		}
		if stats.Archived != chars*9/10 {
			b.Fatalf("archived %d, want %d", stats.Archived, chars*9/10)
		}
		b.ReportMetric(float64(doc.Snapshot().TotalLen()), "hot-instances")
		load(b, database, doc)
	})
	// One full compaction pass over a freshly built 90%-deleted document.
	b.Run("pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, database, doc := e14Doc(b, chars)
			probe := doc.TextAt(eng.Clock().Now())
			b.StartTimer()
			if _, err := doc.Compact(eng.Clock().Now()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if doc.TextAt(eng.Clock().Now()) != probe {
				b.Fatal("compaction changed the present text")
			}
			database.Close()
			b.StartTimer()
		}
	})
}
