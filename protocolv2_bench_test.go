package tendax_test

import (
	"strings"
	"testing"

	"tendax/internal/client"
	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/server"
	"tendax/internal/util"
)

func coreID(id uint64) util.ID { return util.ID(id) }

// benchServer starts a server over a file-backed store (real fsyncs — the
// cost protocol v2's batching amortises) and returns its address.
func benchServer(b *testing.B) (string, *core.Engine) {
	b.Helper()
	database, err := db.Open(db.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(database, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(eng, nil)
	srv.SetLogf(func(string, ...interface{}) {})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	b.Cleanup(func() {
		srv.Close()
		database.Close()
	})
	return addr.String(), eng
}

// BenchmarkE15Typing compares the two editing hot paths end to end over
// real TCP and a file-backed WAL (EXPERIMENTS.md E15): the v1 protocol
// pays one blocking request round-trip plus one durability wait per
// keystroke; a v2 session coalesces keystrokes into ID-anchored batches
// and correlates the durable acknowledgements asynchronously. Each
// benchmark op is one durably-committed keystroke.
func BenchmarkE15Typing(b *testing.B) {
	b.Run("v1-per-keystroke", func(b *testing.B) {
		addr, _ := benchServer(b)
		c, err := client.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if err := c.Login("u", ""); err != nil {
			b.Fatal(err)
		}
		docID, err := c.CreateDocument("e15-v1")
		if err != nil {
			b.Fatal(err)
		}
		d, err := c.Open(docID)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Append("x"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-session", func(b *testing.B) {
		addr, _ := benchServer(b)
		c, err := client.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if err := c.Login("u", ""); err != nil {
			b.Fatal(err)
		}
		docID, err := c.CreateDocument("e15-v2")
		if err != nil {
			b.Fatal(err)
		}
		d, err := c.Open(docID)
		if err != nil {
			b.Fatal(err)
		}
		s, err := d.Session()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Type("x"); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Wait(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/float64(s.Flushes()), "keystrokes/batch")
	})
}

// BenchmarkE15Resync compares resynchronisation costs for a lagged
// replica of a large document: a v2 delta resync transfers O(gap) events
// from the op ring; the v1 path refetches the O(doc) full text.
func BenchmarkE15Resync(b *testing.B) {
	const docBytes = 64 * 1024
	const gap = 16
	setup := func(b *testing.B) (*client.Client, *client.Doc, *core.Engine) {
		addr, eng := benchServer(b)
		c, err := client.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		if err := c.Login("u", ""); err != nil {
			b.Fatal(err)
		}
		docID, err := c.CreateDocument("e15-resync")
		if err != nil {
			b.Fatal(err)
		}
		d, err := c.Open(docID)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Insert(0, strings.Repeat("x", docBytes)); err != nil {
			b.Fatal(err)
		}
		return c, d, eng
	}
	b.Run("v2-delta", func(b *testing.B) {
		c, d, eng := setup(b)
		if _, err := c.Hello(); err != nil {
			b.Fatal(err)
		}
		srvDoc, err := eng.OpenDocument(coreID(d.ID()))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := 0; j < gap; j++ { // re-open the gap server-side
				if _, err := srvDoc.AppendText("w", "y"); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if err := d.Resync(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v1-full", func(b *testing.B) {
		_, d, eng := setup(b)
		srvDoc, err := eng.OpenDocument(coreID(d.ID()))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := 0; j < gap; j++ {
				if _, err := srvDoc.AppendText("w", "y"); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if err := d.Resync(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
