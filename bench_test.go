// Benchmarks regenerating the TeNDaX experiments (DESIGN.md §12): one
// benchmark per experiment E1–E10. cmd/tendax-bench prints the
// corresponding human-readable tables; these give the testing.B numbers.
package tendax_test

import (
	"fmt"
	"testing"
	"time"

	"tendax/internal/client"
	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/folders"
	"tendax/internal/index"
	"tendax/internal/mining"
	"tendax/internal/search"
	"tendax/internal/security"
	"tendax/internal/server"
	"tendax/internal/storage"
	"tendax/internal/util"
	"tendax/internal/wal"
	"tendax/internal/workflow"
	"tendax/internal/workload"
)

func benchEngine(b *testing.B) (*core.Engine, *db.Database) {
	b.Helper()
	database, err := db.Open(db.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(database, nil)
	if err != nil {
		b.Fatal(err)
	}
	return eng, database
}

// BenchmarkE1CollaborativeEditing measures committed append operations per
// second with N concurrent editors over real TCP (§3, the LAN party).
func BenchmarkE1CollaborativeEditing(b *testing.B) {
	for _, editors := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("editors=%d", editors), func(b *testing.B) {
			eng, database := benchEngine(b)
			defer database.Close()
			srv := server.New(eng, nil)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve()
			defer srv.Close()

			host, err := client.Dial(addr.String())
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			host.Login("host", "")
			docID, err := host.CreateDocument("bench")
			if err != nil {
				b.Fatal(err)
			}
			docs := make([]*client.Doc, editors)
			for i := range docs {
				c, err := client.Dial(addr.String())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				c.Login(fmt.Sprintf("u%d", i), "")
				if docs[i], err = c.Open(docID); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			done := make(chan error, editors)
			per := b.N / editors
			if per == 0 {
				per = 1
			}
			for i := 0; i < editors; i++ {
				go func(d *client.Doc, i int) {
					for j := 0; j < per; j++ {
						if err := d.Append("x"); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(docs[i], i)
			}
			for i := 0; i < editors; i++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2EditTransaction measures one single-character insert
// transaction at random positions in documents of increasing size (§2:
// "very fast transactions for all editing tasks").
func BenchmarkE2EditTransaction(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("docsize=%d", size), func(b *testing.B) {
			eng, database := benchEngine(b)
			defer database.Close()
			doc, err := eng.CreateDocument("u", "bench")
			if err != nil {
				b.Fatal(err)
			}
			rng := util.NewRand(1)
			for doc.Len() < size {
				if _, err := doc.AppendText("u", rng.Letters(512)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pos := rng.Intn(doc.Len())
				if _, err := doc.InsertText("u", pos, "x"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3UndoRedo measures one undo+redo round trip against a deep
// two-user history (§3, local and global undo/redo).
func BenchmarkE3UndoRedo(b *testing.B) {
	for _, depth := range []int{100, 1000} {
		b.Run(fmt.Sprintf("history=%d", depth), func(b *testing.B) {
			eng, database := benchEngine(b)
			defer database.Close()
			doc, err := eng.CreateDocument("alice", "bench")
			if err != nil {
				b.Fatal(err)
			}
			rng := util.NewRand(2)
			for i := 0; i < depth; i++ {
				user := "alice"
				if i%2 == 1 {
					user = "bob"
				}
				if _, err := doc.AppendText(user, rng.Letters(5)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := doc.UndoLocal("alice"); err != nil {
					b.Fatal(err)
				}
				if _, err := doc.RedoLocal("alice"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4Workflow measures one complete business process: define, two
// tasks, one dynamic insertion with re-route, full completion (§3).
func BenchmarkE4Workflow(b *testing.B) {
	eng, database := benchEngine(b)
	defer database.Close()
	sec, err := security.NewStore(eng)
	if err != nil {
		b.Fatal(err)
	}
	wf, err := workflow.NewStore(eng, sec)
	if err != nil {
		b.Fatal(err)
	}
	sec.CreateUser("coord", "pw")
	sec.CreateUser("tina", "pw", "translator")
	doc, err := eng.CreateDocument("coord", "bench")
	if err != nil {
		b.Fatal(err)
	}
	doc.AppendText("coord", "body")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := wf.Define("coord", doc.ID(), "p")
		if err != nil {
			b.Fatal(err)
		}
		t1, err := wf.AddTask("coord", p.ID, "translate", "", "role:translator", util.NilID, util.NilID)
		if err != nil {
			b.Fatal(err)
		}
		t2, err := wf.InsertTaskAfter("coord", p.ID, t1.ID, "verify", "", "user:coord")
		if err != nil {
			b.Fatal(err)
		}
		if err := wf.Accept("tina", t1.ID); err != nil {
			b.Fatal(err)
		}
		if err := wf.Complete("tina", t1.ID, ""); err != nil {
			b.Fatal(err)
		}
		if err := wf.Accept("coord", t2.ID); err != nil {
			b.Fatal(err)
		}
		if err := wf.Complete("coord", t2.ID, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5DynamicFolders measures one evaluation of the paper's flagship
// dynamic folder ("read by user within the last week") over corpora of
// increasing size (§3).
func BenchmarkE5DynamicFolders(b *testing.B) {
	for _, docs := range []int{100, 1000} {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			eng, database := benchEngine(b)
			defer database.Close()
			if _, err := workload.BuildCorpus(eng, workload.CorpusSpec{
				Docs: docs, Users: 8, MeanSize: 100, ReadRatio: 0.5, Seed: 4,
			}); err != nil {
				b.Fatal(err)
			}
			fstore, err := folders.NewStore(eng)
			if err != nil {
				b.Fatal(err)
			}
			folder, err := fstore.CreateDynamic("user0", "f",
				folders.ReadBy{User: "user0", Within: 7 * 24 * time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fstore.Eval(folder); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Lineage measures building the full provenance graph (Figure 1)
// from the character store.
func BenchmarkE6Lineage(b *testing.B) {
	eng, database := benchEngine(b)
	defer database.Close()
	if _, _, err := workload.BuildPasteChains(eng, workload.PasteChainSpec{
		Depth: 4, FanOut: 3, ChunkLen: 32, Externals: 3, Seed: 5,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := index.Open(eng)
		if err != nil {
			b.Fatal(err)
		}
		g := svc.Graph()
		svc.Close()
		if len(g.Edges) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkE7VisualMining measures feature extraction plus the 2-D PCA
// layout of the document space (Figure 2).
func BenchmarkE7VisualMining(b *testing.B) {
	eng, database := benchEngine(b)
	defer database.Close()
	if _, err := workload.BuildCorpus(eng, workload.CorpusSpec{
		Docs: 200, Users: 10, MeanSize: 150, ReadRatio: 0.5, Seed: 6,
	}); err != nil {
		b.Fatal(err)
	}
	svc, err := index.Open(eng)
	if err != nil {
		b.Fatal(err)
	}
	g := svc.Graph()
	svc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feats, err := mining.Extract(eng, g, eng.Clock().Now())
		if err != nil {
			b.Fatal(err)
		}
		if pts := mining.Layout(feats); len(pts) != 200 {
			b.Fatal("layout lost documents")
		}
	}
}

// BenchmarkE8Search measures one ranked content query against a prebuilt
// index (§3, search with ranking options).
func BenchmarkE8Search(b *testing.B) {
	for _, ranker := range []search.Ranker{search.ByRelevance, search.ByNewest, search.ByMostCited} {
		b.Run(string(ranker), func(b *testing.B) {
			eng, database := benchEngine(b)
			defer database.Close()
			if _, err := workload.BuildCorpus(eng, workload.CorpusSpec{
				Docs: 300, Users: 8, MeanSize: 150, ReadRatio: 0.4, Seed: 7,
			}); err != nil {
				b.Fatal(err)
			}
			svc, err := index.Open(eng)
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Query(search.Query{Terms: []string{"a"}, Rank: ranker, Limit: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Recovery measures crash recovery (ARIES analysis+redo+undo)
// after an editing storm with a torn log tail.
func BenchmarkE9Recovery(b *testing.B) {
	for _, ops := range []int{200, 1000} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			disk := storage.NewMemDisk()
			store := wal.NewMemStore()
			database, err := db.OpenWith(disk, store, db.Options{})
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.NewEngine(database, nil)
			if err != nil {
				b.Fatal(err)
			}
			doc, err := eng.CreateDocument("u", "bench")
			if err != nil {
				b.Fatal(err)
			}
			rng := util.NewRand(8)
			for i := 0; i < ops; i++ {
				if _, err := doc.AppendText("u", rng.Letters(4)); err != nil {
					b.Fatal(err)
				}
			}
			logBytes, err := store.ReadAll()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh crash image each iteration: stale pages + full log.
				crashDisk := storage.NewMemDisk()
				crashStore := wal.NewMemStore()
				crashStore.Append(logBytes)
				crashStore.Truncate(crashStore.Len() - 3)
				if _, err := db.OpenWith(crashDisk, crashStore, db.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10PasteAblation compares paste-with-provenance against plain
// insertion of the same text (the metadata-gathering overhead).
func BenchmarkE10PasteAblation(b *testing.B) {
	const chunk = 64
	b.Run("with-provenance", func(b *testing.B) {
		eng, database := benchEngine(b)
		defer database.Close()
		src, _ := eng.CreateDocument("u", "src")
		src.AppendText("u", util.NewRand(9).Letters(chunk*2))
		clip, err := src.Copy("u", 0, chunk)
		if err != nil {
			b.Fatal(err)
		}
		dst, _ := eng.CreateDocument("u", "dst")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dst.Paste("u", dst.Len(), clip); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plain-insert", func(b *testing.B) {
		eng, database := benchEngine(b)
		defer database.Close()
		text := util.NewRand(9).Letters(chunk)
		dst, _ := eng.CreateDocument("u", "dst")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dst.InsertText("u", dst.Len(), text); err != nil {
				b.Fatal(err)
			}
		}
	})
}
