package tendax_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/util"
	"tendax/internal/workload"
)

// seedE13Doc opens a file-backed engine with one document pre-grown to
// ~2000 characters, the shared fixture of the E13 benchmarks.
func seedE13Doc(b *testing.B) (*core.Document, *db.Database) {
	b.Helper()
	database, err := db.Open(db.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(database, nil)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := eng.CreateDocument("u", "e13")
	if err != nil {
		b.Fatal(err)
	}
	rng := util.NewRand(29)
	for doc.Len() < 2000 {
		if _, err := doc.AppendText("u", rng.Letters(500)); err != nil {
			b.Fatal(err)
		}
	}
	return doc, database
}

// BenchmarkE13SnapshotReads measures the mixed read/write workload of
// EXPERIMENTS.md E13: 8 writers durably appending to one shared document
// while M reader goroutines take MVCC snapshots and read the full text at
// a steady resync-like pace (one full-document read every 5ms each).
// Reads resolve against immutable snapshots and never touch the document
// lock, so the writers' p50 commit latency stays within noise of the
// readers=0 baseline while every reader sustains its read rate. The
// readers are paced rather than spinning because a busy-loop reader on a
// small machine measures scheduler time-slicing, not lock contention —
// BenchmarkE13SnapshotReadThroughput below measures raw read bandwidth.
func BenchmarkE13SnapshotReads(b *testing.B) {
	const writers = 8
	const readPace = 5 * time.Millisecond
	for _, readers := range []int{0, 1, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			doc, database := seedE13Doc(b)
			defer database.Close()

			per := b.N / writers
			if per == 0 {
				per = 1
			}
			var stop atomic.Bool
			var readCount atomic.Int64
			var rwg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for !stop.Load() {
						s := doc.Snapshot()
						if len(s.Text()) < 2000 {
							panic("snapshot lost the document")
						}
						readCount.Add(1)
						time.Sleep(readPace)
					}
				}()
			}

			lats := make([][]time.Duration, writers)
			b.ResetTimer()
			start := time.Now()
			var wwg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func(w int) {
					defer wwg.Done()
					lats[w] = make([]time.Duration, 0, per)
					for j := 0; j < per; j++ {
						t0 := time.Now()
						if _, err := doc.AppendText("u", "x"); err != nil {
							errs <- err
							return
						}
						lats[w] = append(lats[w], time.Since(t0))
					}
				}(w)
			}
			wwg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			stop.Store(true)
			rwg.Wait()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}

			var rec workload.LatencyRecorder
			for _, ls := range lats {
				for _, l := range ls {
					rec.Record(l)
				}
			}
			b.ReportMetric(float64(rec.Percentile(50).Nanoseconds()), "p50-commit-ns")
			b.ReportMetric(float64(readCount.Load())/elapsed.Seconds(), "reads/s")
			if err := doc.CheckInvariants(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE13SnapshotReadThroughput measures raw snapshot read bandwidth:
// R goroutines splitting b.N full-document snapshot reads with no writers
// in the way. There is no lock to collapse on, so aggregate throughput
// scales with cores (and stays flat per-core on a single-CPU machine).
func BenchmarkE13SnapshotReadThroughput(b *testing.B) {
	for _, readers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			doc, database := seedE13Doc(b)
			defer database.Close()
			per := b.N / readers
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < per; j++ {
						s := doc.Snapshot()
						if len(s.Text()) < 2000 {
							panic("snapshot lost the document")
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(readers*per)/elapsed.Seconds(), "reads/s")
		})
	}
}
