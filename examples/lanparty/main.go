// LAN-party: the paper's demonstration scenario — one TeNDaX server, many
// editors connected over real TCP, all typing into the same document
// concurrently, with live propagation, awareness, collaborative layouting
// and global undo.
//
// The players type through protocol-v2 sessions: keystrokes coalesce into
// ID-anchored batches, acknowledgements are pipelined, and each player's
// text chains after their own previous insert — so no amount of
// concurrent typing can tear a player's lines apart, and nobody's typing
// rate is bounded by round-trips.
//
// Run with: go run ./examples/lanparty [-editors 6] [-bursts 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"tendax/internal/client"
	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/protocol"
	"tendax/internal/server"
)

func main() {
	editors := flag.Int("editors", 6, "number of concurrent editors")
	bursts := flag.Int("bursts", 8, "text bursts each editor types")
	flag.Parse()

	// Start the server on a loopback port (in-memory database).
	database, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer database.Close()
	eng, err := core.NewEngine(database, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(eng, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("server on %s\n", addr)

	// The host creates the shared document.
	host, err := client.Dial(addr.String(), client.WithUser("host"))
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()
	docID, err := host.CreateDocument("lan-party")
	must(err)
	hostDoc, err := host.Open(docID)
	must(err)
	must(hostDoc.Insert(0, "== LAN party minutes ==\n"))

	// Players join from their own connections ("different machines").
	var wg sync.WaitGroup
	for i := 0; i < *editors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("player%d", i)
			c, err := client.Dial(addr.String(), client.WithUser(user))
			if err != nil {
				log.Printf("%s: %v", user, err)
				return
			}
			defer c.Close()
			d, err := c.Open(docID)
			if err != nil {
				log.Printf("%s: %v", user, err)
				return
			}
			// A v2 session per player: typing is coalesced and pipelined;
			// Close drains the durable acknowledgements.
			s, err := d.Session()
			if err != nil {
				log.Printf("%s: %v", user, err)
				return
			}
			for j := 0; j < *bursts; j++ {
				if err := s.Type(fmt.Sprintf("[%s writes line %d]\n", user, j)); err != nil {
					log.Printf("%s: %v", user, err)
					return
				}
			}
			if err := s.Close(); err != nil {
				log.Printf("%s: %v", user, err)
			}
		}(i)
	}
	wg.Wait()

	// Everything every player typed is now one consistent document; wait
	// for the host replica to catch up with all pushes.
	final, err := hostDoc.Read()
	must2(err)
	fmt.Printf("\n--- document after the party (%d chars) ---\n", len([]rune(final)))
	fmt.Println(truncate(final, 500))

	// Awareness: who is present.
	present, err := hostDoc.Presence()
	must2(err)
	fmt.Printf("present: %d users\n", len(present))

	// The paper's *global* undo: the very last committed operation —
	// whichever player made it — is reverted by the host. With sessions,
	// one operation is one coalesced typing burst.
	before := len([]rune(final))
	must2(hostDoc.Undo(protocol.ScopeGlobal))
	text, err := hostDoc.Read()
	must2(err)
	fmt.Printf("global undo reverted the last player's burst: %d -> %d chars\n",
		before, len([]rune(text)))

	// Collaborative layout: the host makes the title a heading.
	must2(hostDoc.Layout(0, 23, "heading", "1"))
	fmt.Println("host applied heading layout to the title")

	// The editing history shows every player's transactions.
	hist, err := hostDoc.History()
	must2(err)
	byUser := map[string]int{}
	for _, h := range hist {
		byUser[h.User]++
	}
	fmt.Printf("history: %d ops total, per user: %v\n", len(hist), byUser)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func truncate(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n]) + fmt.Sprintf("... (%d more chars)", len(r)-n)
}
