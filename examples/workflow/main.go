// Workflow: the paper's "business process definitions and flow" demo —
// an ad-hoc translate-and-verify process defined inside a document, with
// tasks assigned to roles, accepted and completed by users, and re-routed
// dynamically at run time.
//
// Run with: go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/security"
	"tendax/internal/util"
	"tendax/internal/workflow"
)

func main() {
	database, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer database.Close()
	eng, err := core.NewEngine(database, nil)
	if err != nil {
		log.Fatal(err)
	}
	sec, err := security.NewStore(eng)
	if err != nil {
		log.Fatal(err)
	}
	eng.SetAccessChecker(sec)
	wf, err := workflow.NewStore(eng, sec)
	if err != nil {
		log.Fatal(err)
	}

	// Users and roles.
	for _, u := range []struct{ name, role string }{
		{"carla", ""}, {"tina", "translator"}, {"tom", "translator"}, {"vera", "verifier"},
	} {
		roles := []string{}
		if u.role != "" {
			roles = append(roles, u.role)
		}
		if err := sec.CreateUser(u.name, "pw", roles...); err != nil {
			log.Fatal(err)
		}
	}

	// The contract document.
	doc, err := eng.CreateDocument("carla", "contract-2006")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := doc.InsertText("carla", 0,
		"§1 The parties agree to collaborate.\n§2 Deliverables are due quarterly.\n"); err != nil {
		log.Fatal(err)
	}

	// Define a process with a task anchored to §1.
	proc, err := wf.Define("carla", doc.ID(), "translate-and-verify")
	if err != nil {
		log.Fatal(err)
	}
	metas, err := doc.RangeMeta(0, 36)
	if err != nil {
		log.Fatal(err)
	}
	translate, err := wf.AddTask("carla", proc.ID, "translate",
		"translate §1 to German", "role:translator",
		metas[0].ID, metas[len(metas)-1].ID)
	if err != nil {
		log.Fatal(err)
	}
	approve, err := wf.AddTask("carla", proc.ID, "approve",
		"final sign-off", "user:carla", util.NilID, util.NilID)
	if err != nil {
		log.Fatal(err)
	}

	// Run-time re-routing: carla decides a verification step is needed
	// between translation and approval — inserted while the process runs.
	verify, err := wf.InsertTaskAfter("carla", proc.ID, translate.ID,
		"verify", "check the German translation", "role:verifier")
	if err != nil {
		log.Fatal(err)
	}
	printTasks(wf, proc.ID)

	// tina (role translator) picks the task from her queue.
	queue, _ := wf.NextFor("tina")
	fmt.Printf("tina's queue: %d task(s)\n", len(queue))
	must(wf.Accept("tina", translate.ID))
	if _, err := doc.InsertText("tina", doc.Len(), "\n§1 (DE): Die Parteien vereinbaren die Zusammenarbeit."); err != nil {
		log.Fatal(err)
	}
	must(wf.Complete("tina", translate.ID, "translated inline below §2"))

	// vera verifies; carla approves; the process completes automatically.
	must(wf.Accept("vera", verify.ID))
	must(wf.Complete("vera", verify.ID, "grammar ok"))
	must(wf.Accept("carla", approve.ID))
	must(wf.Complete("carla", approve.ID, "signed"))

	p, _ := wf.ProcessByID(proc.ID)
	fmt.Printf("\nprocess %q is now: %s\n", p.Name, p.State)
	printTasks(wf, proc.ID)
	fmt.Printf("\nfinal document:\n%s\n", doc.Text())
}

func printTasks(wf *workflow.Store, proc util.ID) {
	tasks, _ := wf.Tasks(proc)
	fmt.Println("tasks in routing order:")
	for _, t := range tasks {
		fmt.Printf("  %-10s %-22s -> %-16s [%s]\n", t.Kind, t.Description, t.Assignee, t.State)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
