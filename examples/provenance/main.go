// Provenance: the paper's metadata-driven features in one scenario —
// copy-paste chains produce a data-lineage graph (Figure 1), dynamic
// folders select documents by creation-process metadata, visual mining lays
// out the document space (Figure 2), and search ranks by "most cited".
//
// Run with: go run ./examples/provenance
package main

import (
	"fmt"
	"log"
	"time"

	"tendax/internal/core"
	"tendax/internal/db"
	"tendax/internal/folders"
	"tendax/internal/index"
	"tendax/internal/mining"
	"tendax/internal/search"
	"tendax/internal/workload"
)

func main() {
	database, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer database.Close()
	eng, err := core.NewEngine(database, nil)
	if err != nil {
		log.Fatal(err)
	}

	// A copy-paste tree: one root, two generations of fan-out 3, plus two
	// external sources quoted into the root.
	docs, edges, err := workload.BuildPasteChains(eng, workload.PasteChainSpec{
		Depth: 2, FanOut: 3, ChunkLen: 24, Externals: 2, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d documents with %d paste edges\n\n", len(docs), edges)

	// One incremental index service answers both the lineage and the
	// search questions below; opened here after the edits, it primes from
	// snapshots — opened before them, it would have folded the op stream.
	svc, err := index.Open(eng)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// --- Data lineage (Figure 1) ---
	g := svc.Graph()
	fmt.Println("lineage edges (who pasted from whom):")
	fmt.Print(g.Render())
	if err := g.CheckAcyclic(); err != nil {
		log.Fatal(err)
	}
	root := docs[0]
	fmt.Printf("root %q is cited by %d documents\n", root.Name(), g.CitationCount(root.ID()))
	leaf := docs[len(docs)-1]
	anc := g.TransitiveSources(leaf.ID())
	fmt.Printf("leaf %q has %d transitive sources\n\n", leaf.Name(), len(anc))

	// Character-exact provenance of a pasted range in the leaf.
	refs, err := svc.Provenance(leaf.ID(), 0, leaf.Len())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("provenance of the leaf's text:")
	for _, r := range refs {
		src := "typed"
		if !r.SrcDoc.IsNil() {
			src = "pasted from " + r.SrcName
		}
		fmt.Printf("  chars [%4d,%4d): %s\n", r.From, r.To, src)
	}

	// --- Dynamic folders ---
	fstore, err := folders.NewStore(eng)
	if err != nil {
		log.Fatal(err)
	}
	// Documents author0 wrote in that were modified in the last week.
	folder, err := fstore.CreateDynamic("author0", "my recent docs", folders.And{
		folders.AuthorIs{User: "author0"},
		folders.ModifiedWithin{D: 7 * 24 * time.Hour},
	})
	if err != nil {
		log.Fatal(err)
	}
	content, err := fstore.Eval(folder)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic folder %q: %d documents (expr %s)\n",
		folder.Name, len(content), folder.Pred.Expr())

	// --- Visual mining (Figure 2) ---
	feats, err := mining.Extract(eng, g, eng.Clock().Now())
	if err != nil {
		log.Fatal(err)
	}
	pts := mining.Layout(feats)
	fmt.Println("\ndocument space (PCA over metadata dimensions):")
	fmt.Print(mining.Scatter(pts, 64, 14))

	// --- Search with ranking options ---
	results, err := svc.Query(search.Query{Rank: search.ByMostCited, Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop documents by 'most cited' ranking:")
	for _, r := range results {
		fmt.Printf("  %-12s citations=%.0f size=%d\n", r.Doc.Name, r.Score, r.Doc.Size)
	}
}
