// Quickstart: the TeNDaX engine embedded in a single process — create a
// document, edit it as database transactions, apply layout, undo, travel in
// time, and inspect the automatically gathered metadata.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tendax/internal/core"
	"tendax/internal/db"
)

func main() {
	// An empty Dir means a fully in-memory database; point it at a
	// directory to get a durable store with write-ahead logging.
	database, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer database.Close()

	eng, err := core.NewEngine(database, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Create and edit: every call below is one database transaction.
	doc, err := eng.CreateDocument("alice", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	must(doc.InsertText("alice", 0, "TeNDaX stores text natively in a database."))
	must(doc.InsertText("bob", 7, "— a Text Native Database eXtension — "))
	fmt.Printf("text:     %s\n", doc.Text())

	// 2. Character-level metadata is gathered automatically.
	meta, err := doc.CharMetaAt(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("char[8]:  %q typed by %s at %s\n", meta.Rune, meta.Author,
		meta.Created.Format("15:04:05.000"))

	// 3. Layout spans anchor to character identities, not offsets.
	if _, err := doc.ApplyLayout("alice", 0, 6, core.SpanBold, "true"); err != nil {
		log.Fatal(err)
	}
	spans, _ := doc.Spans()
	from, to := doc.SpanRange(spans[0])
	fmt.Printf("span:     %s over [%d,%d)\n", spans[0].Kind, from, to)

	// 4. Versions are snapshots by timestamp — reconstruction is a filter
	// over the stable character chain.
	v1, err := doc.CreateVersion("alice", "v1")
	if err != nil {
		log.Fatal(err)
	}
	must(doc.DeleteRange("alice", 0, 7))
	fmt.Printf("now:      %s\n", doc.Text())
	old, _ := doc.VersionText(v1.ID)
	fmt.Printf("v1:       %s\n", old)

	// 5. Local undo reverts alice's delete even though bob edited earlier.
	if _, err := doc.UndoLocal("alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("undone:   %s\n", doc.Text())

	// 6. Edit batches (the protocol-v2 hot path, embedded form): several
	// ops — ID-anchored inserts, deletes by identity, layout over the
	// batch's own text — commit as ONE transaction with ONE history-
	// preserving awareness event. Over the wire, client sessions coalesce
	// keystrokes into exactly these batches.
	results, err := doc.Apply("alice", []core.EditOp{
		{Kind: core.EditInsert, Pos: doc.Len(), Text: " Every keystroke is a row"},
		{Kind: core.EditInsert, AnchorPrev: true, Text: "; every batch is a transaction."},
		{Kind: core.EditLayout, AnchorPrev: true, Span: core.SpanItalic, Value: "true"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch:    %d ops, first inserted char id %v\n", len(results), results[0].IDs[0])
	fmt.Printf("text:     %s\n", doc.Text())

	// 7. Document metadata for dynamic folders, mining and search.
	info := doc.Info()
	fmt.Printf("metadata: creator=%s size=%d authors=%v state=%s\n",
		info.Creator, info.Size, info.Authors, info.State)

	hist := doc.History()
	fmt.Printf("history:  %d operations logged\n", len(hist))
	for _, op := range hist {
		fmt.Printf("  %-7s by %-6s (%d chars)\n", op.Kind, op.User, op.Chars)
	}
}

func must(_ interface{}, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
