module tendax

go 1.21
