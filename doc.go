// Package tendax is a from-scratch reproduction of "TeNDaX, a Collaborative
// Database-Based Real-Time Editor System" (Leone, Hodel-Widmer, Boehlen,
// Dittrich — EDBT 2006): text stored natively in an embedded transactional
// database, with collaborative real-time editing, local/global undo,
// in-document business processes, dynamic folders, data lineage, visual and
// text mining, search, and fine-grained security.
//
// The public surface lives in the internal packages (this module is a
// self-contained reproduction, not a published library):
//
//   - internal/core — the TeNDaX engine (documents, editing transactions)
//   - internal/db, storage, wal, txn, btree — the embedded database
//   - internal/server, client, editor, protocol — the collaborative layer
//   - internal/security, workflow, folders, lineage, mining, search — the
//     subsystems demonstrated in the paper
//
// See DESIGN.md for the architecture (including the group-commit pipeline,
// §3, the fuzzy-checkpoint/recovery protocol, §4, the MVCC snapshot read
// path, §5, and the ID-anchored batched editing protocol v2, §7) and
// EXPERIMENTS.md for the reproduction of every figure and demonstrated
// capability. The *_bench_test.go files in this directory hold one
// benchmark per experiment (E1–E15); cmd/tendax-bench prints the
// corresponding tables.
package tendax
