// Ablation benchmarks for the design choices DESIGN.md calls out: the
// order-statistic treap position index, B-tree secondary indexes, the
// buffer pool, and tombstone-based version reconstruction.
package tendax_test

import (
	"fmt"
	"testing"
	"time"

	"tendax/internal/db"
	"tendax/internal/texttree"
	"tendax/internal/util"
)

// buildBuffer creates a buffer with n visible characters.
func buildBuffer(b *testing.B, n int) *texttree.Buffer {
	b.Helper()
	buf := texttree.NewBuffer()
	var gen util.IDGen
	prev := util.NilID
	for i := 0; i < n; i++ {
		id := gen.Next()
		if _, err := buf.InsertAfter(prev, texttree.Char{
			ID: id, Rune: 'a', Author: "u", Created: time.Unix(int64(i), 0),
		}); err != nil {
			b.Fatal(err)
		}
		prev = id
	}
	return buf
}

// BenchmarkAblationPositionIndex compares the treap's O(log n) position
// lookup against the naive linear walk a plain linked list would need —
// the core data-structure choice behind "editing cost flat in doc size".
func BenchmarkAblationPositionIndex(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		buf := buildBuffer(b, n)
		rng := util.NewRand(1)
		b.Run(fmt.Sprintf("treap/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := buf.IDAt(rng.Intn(n)); !ok {
					b.Fatal("lookup failed")
				}
			}
		})
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				target := rng.Intn(n)
				// Linear walk: what a pointer chain without the order
				// index would cost.
				idx := 0
				var got util.ID
				for id := buf.Head(); !id.IsNil(); {
					ch, _ := buf.Char(id)
					if !ch.Deleted {
						if idx == target {
							got = id
							break
						}
						idx++
					}
					id = ch.Next
				}
				if got.IsNil() {
					b.Fatal("walk failed")
				}
			}
		})
	}
}

// BenchmarkAblationSecondaryIndex compares equality lookup through the
// B-tree index against a full table scan with a predicate.
func BenchmarkAblationSecondaryIndex(b *testing.B) {
	database, err := db.Open(db.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer database.Close()
	tbl, err := database.CreateTable("t", db.Schema{
		{Name: "id", Type: db.TInt},
		{Name: "bucket", Type: db.TString},
	}, "bucket")
	if err != nil {
		b.Fatal(err)
	}
	tx, _ := database.Begin()
	const rows = 5000
	for i := int64(0); i < rows; i++ {
		if _, err := tbl.Insert(tx, db.Row{i, fmt.Sprintf("b%d", i%50)}); err != nil {
			b.Fatal(err)
		}
	}
	tx.Commit()

	b.Run("index-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rids, err := tbl.LookupEq("bucket", "b7")
			if err != nil || len(rids) != rows/50 {
				b.Fatalf("lookup = %d, %v", len(rids), err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			err := tbl.Scan(nil, func(_ db.RID, row db.Row) (bool, error) {
				if row[1].(string) == "b7" {
					count++
				}
				return true, nil
			})
			if err != nil || count != rows/50 {
				b.Fatalf("scan = %d, %v", count, err)
			}
		}
	})
}

// BenchmarkAblationBufferPool measures random point reads with a pool that
// fits the working set vs one that thrashes.
func BenchmarkAblationBufferPool(b *testing.B) {
	for _, pool := range []int{8, 1024} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			database, err := db.Open(db.Options{PoolPages: pool})
			if err != nil {
				b.Fatal(err)
			}
			defer database.Close()
			tbl, _ := database.CreateTable("t", db.Schema{
				{Name: "id", Type: db.TInt},
				{Name: "pad", Type: db.TBytes},
			})
			tx, _ := database.Begin()
			pad := make([]byte, 256)
			const rows = 2000 // ~140 pages: far beyond the small pool
			for i := int64(0); i < rows; i++ {
				if _, err := tbl.Insert(tx, db.Row{i, pad}); err != nil {
					b.Fatal(err)
				}
			}
			tx.Commit()
			rng := util.NewRand(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tbl.GetByPK(nil, int64(rng.Intn(rows))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVersionReconstruction measures TextAt (tombstone filter)
// against full text extraction, showing versions cost no stored snapshots.
func BenchmarkAblationVersionReconstruction(b *testing.B) {
	buf := texttree.NewBuffer()
	var gen util.IDGen
	prev := util.NilID
	const n = 20_000
	for i := 0; i < n; i++ {
		id := gen.Next()
		buf.InsertAfter(prev, texttree.Char{ID: id, Rune: 'a', Author: "u",
			Created: time.Unix(int64(i), 0)})
		prev = id
	}
	// Delete every third character late in history.
	ids := buf.VisibleIDs()
	for i := 0; i < len(ids); i += 3 {
		buf.Delete(ids[i], "u", time.Unix(n+int64(i), 0))
	}
	mid := time.Unix(n/2, 0)
	b.Run("TextAt-midpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := buf.TextAt(mid); len(s) == 0 {
				b.Fatal("empty reconstruction")
			}
		}
	})
	b.Run("Text-current", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := buf.Text(); len(s) == 0 {
				b.Fatal("empty text")
			}
		}
	})
}
