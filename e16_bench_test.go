package tendax_test

import (
	"strings"
	"testing"

	"tendax/internal/client"
	"tendax/internal/core"
	"tendax/internal/protocol"
)

// BenchmarkE16BinaryCodec measures the protocol-v3 binary codec and the
// allocation-lean commit path (EXPERIMENTS.md E16).
//
// The encode/decode sub-benchmarks isolate the codec itself on a
// representative edit-batch acknowledgement (sequential instance IDs, the
// common case the RLE ID-list encoding targets); the session
// sub-benchmarks run the full durable typing path over real TCP and a
// file-backed WAL under each framing. Run with -benchmem: allocs/op per
// durable keystroke is one of the gated trajectory metrics.
func BenchmarkE16BinaryCodec(b *testing.B) {
	ack := &protocol.Message{
		Type: protocol.TypeResponse,
		ID:   42,
		Results: []protocol.EditResult{{
			OpID: 9000,
			IDs:  []uint64{5000, 5001, 5002, 5003, 5004, 5005, 5006, 5007},
		}},
	}
	b.Run("encode-json", func(b *testing.B) {
		b.ReportAllocs()
		var bytes int
		for i := 0; i < b.N; i++ {
			f, err := protocol.EncodeFrame(ack, protocol.Version2)
			if err != nil {
				b.Fatal(err)
			}
			bytes = len(f)
		}
		b.ReportMetric(float64(bytes), "frame-bytes")
	})
	b.Run("encode-binary", func(b *testing.B) {
		b.ReportAllocs()
		var bytes int
		for i := 0; i < b.N; i++ {
			f := protocol.EncodeBinaryFrame(ack)
			bytes = len(f)
		}
		b.ReportMetric(float64(bytes), "frame-bytes")
	})
	b.Run("decode-binary", func(b *testing.B) {
		frame := protocol.EncodeBinaryFrame(ack)
		payload := frame[2:] // strip magic + 1-byte length varint
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := protocol.DecodeBinaryPayload(payload); err != nil {
				b.Fatal(err)
			}
		}
	})

	typing := func(b *testing.B, maxVer int) {
		addr, _ := benchServer(b)
		c, err := client.Dial(addr,
			client.WithMaxVersion(maxVer), client.WithUser("u"))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if ver := c.Ver(); ver != maxVer {
			b.Fatalf("hello: negotiated v%d, want v%d", ver, maxVer)
		}
		docID, err := c.CreateDocument("e16")
		if err != nil {
			b.Fatal(err)
		}
		d, err := c.Open(docID)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := d.Session()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sess.Type("x"); err != nil {
				b.Fatal(err)
			}
		}
		if err := sess.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("v2-session-json", func(b *testing.B) { typing(b, protocol.Version2) })
	b.Run("v3-session-binary", func(b *testing.B) { typing(b, protocol.Version3) })
}

// BenchmarkE16Apply measures the engine's batched Apply path directly —
// the pooled batch staging, arena-allocated character records, and the
// single-splice InsertRun — with no protocol or TCP in the way. Each
// benchmark op is one 128-keystroke batch.
func BenchmarkE16Apply(b *testing.B) {
	_, eng := benchServer(b)
	doc, err := eng.CreateDocument("bench", "e16-apply")
	if err != nil {
		b.Fatal(err)
	}
	ops := []core.EditOp{{Kind: core.EditInsert, Pos: 0, Text: strings.Repeat("x", 128)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := doc.ApplyAsync("bench", ops); err != nil {
			b.Fatal(err)
		}
	}
}
